//! Observability substrate for the `pi3d` workspace — **std-only, zero
//! external dependencies** (this build environment has no registry
//! access, and the measurement layer must never be the reason a build
//! fails).
//!
//! Five pillars:
//!
//! * [`metrics`] — a global, thread-safe registry of named [`Counter`]s,
//!   [`Gauge`]s, and log-scale [`Histogram`]s. Handles are `&'static`;
//!   the hot path is a single relaxed atomic op, no locks.
//! * [`span`] — RAII [`Span`] timers with parent/child nesting. Spans
//!   aggregate into a per-run phase-timing tree (mesh build → stamping →
//!   preconditioner setup → CG iterations → back-substitution).
//! * [`log`] — a leveled stderr logger ([`Level`]), configured from the
//!   `PI3D_LOG` environment variable or `--log-level`, gated at runtime
//!   by one atomic load.
//! * [`report`] — a [`RunReport`] serialized by the hand-rolled [`json`]
//!   writer: phase timings, CG convergence traces, mesh size statistics,
//!   memory-controller policy counters, and per-experiment wall clock.
//! * [`trace`] — a flight recorder: per-thread fixed-capacity event
//!   rings (no locks on the hot path, oldest events dropped on
//!   overflow) drained into Chrome trace-event JSON for Perfetto.
//!   [`progress`] rides on the same substrate to heartbeat sweep
//!   progress (done/total, rate, ETA, unit p50/p95), and [`mem`]
//!   contributes best-effort peak-RSS gauges from `/proc`.
//!
//! Downstream crates instrument behind their own `telemetry` cargo
//! feature (on by default); with the feature off, call sites compile to
//! nothing, so the Fig. 4 speedup numbers stay honest.
//!
//! The crate also hosts substrate utilities that want the same
//! "everything already depends on it" home: [`rng`], a seeded SplitMix64
//! generator replacing the `rand` crate for the synthetic-workload
//! generator and the randomized property tests; [`par`], the
//! deterministic order-preserving `parallel_map` over
//! `std::thread::scope` used by the solver's batch RHS solves and the
//! experiment-level policy sweeps (with per-item panic isolation via
//! [`par::parallel_map_catch`]); [`cancel`], the cooperative
//! [`CancelToken`] set by the std-only SIGINT shim; and [`fsio`], the
//! crash-consistent [`fsio::atomic_write`] every JSON artifact goes
//! through.
//!
//! # Examples
//!
//! ```
//! use pi3d_telemetry::{metrics, span};
//!
//! let solves = metrics::counter("solver.cg.solves");
//! {
//!     let _timer = span::span("solve");
//!     solves.incr(1);
//! }
//! assert!(solves.get() >= 1);
//! let phases = span::snapshot();
//! assert!(phases.iter().any(|p| p.path == "solve"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

pub mod cancel;
pub mod fsio;
pub mod json;
pub mod log;
pub mod mem;
pub mod metrics;
pub mod par;
pub mod progress;
pub mod report;
pub mod rng;
pub mod span;
pub mod trace;

pub use cancel::CancelToken;
pub use json::Json;
pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram};
pub use progress::ProgressTracker;
pub use report::RunReport;
pub use span::Span;
pub use trace::TraceSnapshot;

// The metrics registry, span table, and report sinks are process-global,
// so unit tests that reset or assert on them must not interleave.
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    pub fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
