//! Flight-recorder tracing: per-thread fixed-capacity event rings drained
//! into Chrome trace-event JSON.
//!
//! The hot path is designed to be near-free when tracing is off — every
//! entry point checks one relaxed [`AtomicBool`] load and returns. When
//! tracing is on, events land in a per-thread ring buffer ([`VecDeque`])
//! reached through a thread-local handle; when a ring fills, the *oldest*
//! events are dropped (flight-recorder semantics) and the drop count is
//! reported in the exported trace. Each ring is shared with a global
//! registry behind a per-thread [`Mutex`] that only its owner ever takes
//! on the hot path (one uncontended lock per event, no cross-thread
//! traffic), so [`drain`] can collect every live thread's events
//! directly. This matters because `std::thread::scope` unblocks as soon
//! as worker *closures* return — their TLS destructors may still be
//! pending, so a destructor-only flush would race the drain and lose
//! whole worker rings. Rings of exited threads are flushed into a
//! finished list by the TLS destructor and deregistered.
//!
//! Spans are recorded as Chrome "complete" events (`ph: "X"`): a
//! [`TraceSpan`] guard captures its start timestamp and pushes a single
//! event on drop. Because a guard is strictly LIFO per thread, per-thread
//! slices are always well-nested, and a ring overflow can never orphan a
//! begin/end pair.
//!
//! ```
//! use pi3d_telemetry::trace;
//!
//! trace::set_enabled(true);
//! {
//!     let _solve = trace::span("solver", "doc_solve");
//!     trace::instant("solver", "doc_marker");
//! }
//! trace::counter("memsim", "doc_queue_depth", 3.0);
//! let snap = trace::drain();
//! assert!(snap.total_events() >= 3);
//! trace::set_enabled(false);
//! trace::reset();
//! ```

use std::borrow::Cow;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Default per-thread ring capacity (events retained per thread).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Schema identifier embedded in exported traces (`otherData.schema`).
pub const TRACE_SCHEMA: &str = "pi3d.trace.v1";

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
/// Bumped by [`reset`]; live thread-local rings lazily discard events
/// recorded under an older generation, so back-to-back runs in one
/// process never leak events across reports.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Stable small thread ids for the trace (`std::thread::ThreadId` is
/// opaque; Chrome wants an integer `tid`).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Process-wide time origin for trace timestamps. Initialized on first
/// use (eagerly by [`set_enabled`]); spans opened before the epoch clamp
/// to timestamp 0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Whether tracing is currently recording. One relaxed atomic load —
/// cheap enough for per-event hot loops.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns event recording on or off. Enabling pins the trace epoch if it
/// is not already set.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Sets the per-thread ring capacity for buffers created *or appended to*
/// after this call. Clamped below to 16 events.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(16), Ordering::Relaxed);
}

/// Currently configured per-thread ring capacity.
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// What one [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A timed slice (Chrome `ph: "X"`), duration in nanoseconds.
    Complete {
        /// Slice duration in nanoseconds.
        dur_ns: u64,
    },
    /// A zero-duration marker (Chrome `ph: "i"`).
    Instant,
    /// A sampled numeric track (Chrome `ph: "C"`).
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event, timestamped in nanoseconds since the trace epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch (slice *start* for spans).
    pub ts_ns: u64,
    /// Category (`"solver"`, `"memsim"`, `"jobs"`, `"phase"`, `"cli"`).
    pub cat: &'static str,
    /// Event name; borrowed for the common static case.
    pub name: Cow<'static, str>,
    /// Payload kind.
    pub kind: TraceKind,
}

/// Everything one thread contributed to a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// Small stable integer id (Chrome `tid`).
    pub tid: u64,
    /// OS thread name, or `"worker-<tid>"` for unnamed threads.
    pub name: String,
    /// Events in ring order (span events ordered by *end* time).
    pub events: Vec<TraceEvent>,
    /// Oldest events discarded because the ring was full.
    pub dropped: u64,
}

struct LocalBuf {
    generation: u64,
    tid: u64,
    thread_name: String,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

impl LocalBuf {
    fn new() -> Self {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let thread_name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("worker-{tid}"));
        LocalBuf {
            generation: GENERATION.load(Ordering::Relaxed),
            tid,
            thread_name,
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        let generation = GENERATION.load(Ordering::Relaxed);
        if generation != self.generation {
            // A reset happened since this thread last recorded: its
            // buffered events belong to a previous run.
            self.generation = generation;
            self.ring.clear();
            self.dropped = 0;
        }
        let cap = CAPACITY.load(Ordering::Relaxed);
        while self.ring.len() >= cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    fn take(&mut self) -> Option<(u64, ThreadTrace)> {
        if self.ring.is_empty() && self.dropped == 0 {
            return None;
        }
        let trace = ThreadTrace {
            tid: self.tid,
            name: self.thread_name.clone(),
            events: self.ring.drain(..).collect(),
            dropped: std::mem::take(&mut self.dropped),
        };
        Some((self.generation, trace))
    }
}

/// Rings flushed by exiting threads (tagged with their generation so a
/// reset can invalidate them wholesale).
fn finished() -> MutexGuard<'static, Vec<(u64, ThreadTrace)>> {
    static FINISHED: OnceLock<Mutex<Vec<(u64, ThreadTrace)>>> = OnceLock::new();
    FINISHED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("trace finished list poisoned")
}

/// Live per-thread rings, shared between each owner thread and [`drain`].
/// Lock order is registry → ring; the TLS destructor takes them one at a
/// time, never nested.
fn registry() -> MutexGuard<'static, Vec<Arc<Mutex<LocalBuf>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<LocalBuf>>>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("trace registry poisoned")
}

/// Thread-local handle to this thread's shared ring. On thread exit the
/// destructor flushes whatever is left into the finished list and drops
/// the registry entry.
struct LocalHandle(Arc<Mutex<LocalBuf>>);

impl LocalHandle {
    fn new() -> Self {
        let buf = Arc::new(Mutex::new(LocalBuf::new()));
        registry().push(Arc::clone(&buf));
        LocalHandle(buf)
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let entry = self.0.lock().expect("trace ring poisoned").take();
        if let Some(entry) = entry {
            finished().push(entry);
        }
        registry().retain(|buf| !Arc::ptr_eq(buf, &self.0));
    }
}

thread_local! {
    static LOCAL: LocalHandle = LocalHandle::new();
}

fn push_event(ev: TraceEvent) {
    // try_with: never panic during thread teardown after the TLS
    // destructor already ran. The lock is this thread's own ring —
    // contended only if a drain is snapshotting it at this instant.
    let _ = LOCAL.try_with(|l| l.0.lock().expect("trace ring poisoned").push(ev));
}

/// RAII guard for a timed slice; inert (no allocation, no clock read)
/// when tracing is off at open time.
#[derive(Debug)]
#[must_use = "dropping the guard ends the slice"]
pub struct TraceSpan(Option<(u64, &'static str, Cow<'static, str>)>);

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((start_ns, cat, name)) = self.0.take() {
            let end = now_ns();
            push_event(TraceEvent {
                ts_ns: start_ns,
                cat,
                name,
                kind: TraceKind::Complete {
                    dur_ns: end.saturating_sub(start_ns),
                },
            });
        }
    }
}

/// An inert guard that records nothing when dropped. Useful for ending
/// a reassignable block guard *before* opening its successor (plain
/// reassignment constructs the new slice first, which would make
/// adjacent sibling slices overlap by a few nanoseconds).
pub fn noop() -> TraceSpan {
    TraceSpan(None)
}

/// Opens a timed slice with a static name.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> TraceSpan {
    if !enabled() {
        return TraceSpan(None);
    }
    TraceSpan(Some((now_ns(), cat, Cow::Borrowed(name))))
}

/// Opens a timed slice with a lazily built name: `make` only runs (and
/// only allocates) when tracing is on.
#[inline]
pub fn span_with<F: FnOnce() -> String>(cat: &'static str, make: F) -> TraceSpan {
    if !enabled() {
        return TraceSpan(None);
    }
    TraceSpan(Some((now_ns(), cat, Cow::Owned(make()))))
}

/// Records an already-timed slice (used by [`crate::span`] guards, which
/// carry their own start [`Instant`]).
#[inline]
pub fn complete_at(cat: &'static str, name: &'static str, start: Instant, dur: Duration) {
    if !enabled() {
        return;
    }
    let ts_ns = start
        .checked_duration_since(epoch())
        .map_or(0, |d| d.as_nanos() as u64);
    push_event(TraceEvent {
        ts_ns,
        cat,
        name: Cow::Borrowed(name),
        kind: TraceKind::Complete {
            dur_ns: dur.as_nanos() as u64,
        },
    });
}

/// Records a zero-duration marker.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    push_event(TraceEvent {
        ts_ns: now_ns(),
        cat,
        name: Cow::Borrowed(name),
        kind: TraceKind::Instant,
    });
}

/// Samples a counter track (rendered as a stacked area chart in
/// Perfetto).
#[inline]
pub fn counter(cat: &'static str, name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    push_event(TraceEvent {
        ts_ns: now_ns(),
        cat,
        name: Cow::Borrowed(name),
        kind: TraceKind::Counter { value },
    });
}

/// Collects every thread's events for the current generation: the live
/// rings of all registered threads (including the caller's) plus rings
/// flushed by exited threads. Threads are sorted by tid. The rings are
/// emptied; recording can continue afterwards.
pub fn drain() -> TraceSnapshot {
    let generation = GENERATION.load(Ordering::Relaxed);
    let mut entries: Vec<(u64, ThreadTrace)> = Vec::new();
    for buf in registry().iter() {
        if let Some(entry) = buf.lock().expect("trace ring poisoned").take() {
            entries.push(entry);
        }
    }
    entries.append(&mut *finished());
    let mut per_tid: Vec<ThreadTrace> = Vec::new();
    for (gen, trace) in entries {
        if gen != generation {
            continue;
        }
        // A thread that flushed more than once (drain mid-run, then
        // again at exit) contributes multiple entries; merge them.
        match per_tid.iter_mut().find(|t| t.tid == trace.tid) {
            Some(existing) => {
                existing.events.extend(trace.events);
                existing.dropped += trace.dropped;
            }
            None => per_tid.push(trace),
        }
    }
    per_tid.sort_by_key(|t| t.tid);
    TraceSnapshot { threads: per_tid }
}

/// Invalidates all buffered events — flushed and still thread-local —
/// without touching the enabled flag. Called by
/// [`crate::report::reset_run`] so back-to-back runs start clean.
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    finished().clear();
}

/// A drained trace: one [`ThreadTrace`] per contributing thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Per-thread event lists, sorted by tid.
    pub threads: Vec<ThreadTrace>,
}

impl TraceSnapshot {
    /// Total events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total events dropped to ring overflow across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Renders the snapshot as a Chrome trace-event document (the
    /// `{"traceEvents": [...]}` object format), loadable in Perfetto or
    /// `chrome://tracing`. Timestamps and durations are microseconds
    /// (fractional, preserving nanosecond precision).
    pub fn to_chrome_json(&self) -> Json {
        let mut events = Vec::new();
        for thread in &self.threads {
            events.push(Json::obj([
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::num(1.0)),
                ("tid", Json::num(thread.tid as f64)),
                ("args", Json::obj([("name", Json::str(&thread.name))])),
            ]));
            for ev in &thread.events {
                let ts = ev.ts_ns as f64 / 1e3;
                let common = [
                    ("name", Json::str(ev.name.as_ref())),
                    ("cat", Json::str(ev.cat)),
                    ("pid", Json::num(1.0)),
                    ("tid", Json::num(thread.tid as f64)),
                    ("ts", Json::num(ts)),
                ];
                let event = match ev.kind {
                    TraceKind::Complete { dur_ns } => Json::obj(common.into_iter().chain([
                        ("ph", Json::str("X")),
                        ("dur", Json::num(dur_ns as f64 / 1e3)),
                    ])),
                    TraceKind::Instant => Json::obj(
                        common
                            .into_iter()
                            .chain([("ph", Json::str("i")), ("s", Json::str("t"))]),
                    ),
                    TraceKind::Counter { value } => Json::obj(common.into_iter().chain([
                        ("ph", Json::str("C")),
                        ("args", Json::obj([("value", Json::num(value))])),
                    ])),
                };
                events.push(event);
            }
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
            (
                "otherData",
                Json::obj([
                    ("schema", Json::str(TRACE_SCHEMA)),
                    ("dropped_events", Json::num(self.total_dropped() as f64)),
                ]),
            ),
        ])
    }

    /// Writes the Chrome trace JSON to `path` atomically
    /// (tmp + fsync + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from [`crate::fsio::atomic_write`].
    pub fn write_chrome_json(&self, path: &Path) -> std::io::Result<()> {
        crate::fsio::atomic_write(path, self.to_chrome_json().to_pretty_string().as_bytes())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::test_support::serial;

    fn clean_slate() {
        set_enabled(false);
        reset();
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = serial();
        clean_slate();
        {
            let _s = span("test", "t_off_span");
        }
        instant("test", "t_off_instant");
        counter("test", "t_off_counter", 1.0);
        assert_eq!(drain().total_events(), 0);
    }

    #[test]
    fn span_instant_counter_round_trip() {
        let _guard = serial();
        clean_slate();
        set_enabled(true);
        {
            let _outer = span("test", "t_outer");
            let _inner = span_with("test", || "t_inner_7".to_string());
            instant("test", "t_marker");
        }
        counter("test", "t_depth", 42.5);
        set_enabled(false);
        let snap = drain();
        assert_eq!(snap.threads.len(), 1);
        let events = &snap.threads[0].events;
        assert_eq!(events.len(), 4);
        // Spans push on drop: instant first, then inner, then outer.
        assert_eq!(events[0].kind, TraceKind::Instant);
        assert_eq!(events[1].name, "t_inner_7");
        assert_eq!(events[2].name, "t_outer");
        assert!(matches!(events[3].kind, TraceKind::Counter { value } if value == 42.5));
        // Inner slice nests inside outer.
        let (TraceKind::Complete { dur_ns: inner_dur }, TraceKind::Complete { dur_ns: outer_dur }) =
            (&events[1].kind, &events[2].kind)
        else {
            panic!("spans must be Complete events");
        };
        assert!(events[1].ts_ns >= events[2].ts_ns);
        assert!(events[1].ts_ns + inner_dur <= events[2].ts_ns + outer_dur);
        reset();
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _guard = serial();
        clean_slate();
        set_capacity(16);
        set_enabled(true);
        for i in 0..100u64 {
            counter("test", "t_overflow", i as f64);
        }
        set_enabled(false);
        let snap = drain();
        assert_eq!(snap.total_events(), 16);
        assert_eq!(snap.total_dropped(), 84);
        // The survivors are the *newest* 16 samples: 84..100.
        let values: Vec<f64> = snap.threads[0]
            .events
            .iter()
            .map(|e| match e.kind {
                TraceKind::Counter { value } => value,
                _ => panic!("expected counters"),
            })
            .collect();
        assert_eq!(values, (84..100).map(|v| v as f64).collect::<Vec<_>>());
        clean_slate();
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = serial();
        clean_slate();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _sp = span("test", "t_worker_unit");
                });
            }
        });
        set_enabled(false);
        let snap = drain();
        assert_eq!(snap.threads.len(), 3);
        for t in &snap.threads {
            assert_eq!(t.events.len(), 1);
            assert_eq!(t.events[0].name, "t_worker_unit");
        }
        reset();
    }

    #[test]
    fn reset_invalidates_live_and_flushed_events() {
        let _guard = serial();
        clean_slate();
        set_enabled(true);
        instant("test", "t_stale_local");
        std::thread::scope(|s| {
            s.spawn(|| instant("test", "t_stale_flushed"));
        });
        reset();
        instant("test", "t_fresh");
        set_enabled(false);
        let snap = drain();
        assert_eq!(snap.total_events(), 1);
        assert_eq!(snap.threads[0].events[0].name, "t_fresh");
        reset();
    }

    #[test]
    fn chrome_json_shape_and_escaping() {
        let _guard = serial();
        clean_slate();
        set_enabled(true);
        {
            let _sp = span_with("test", || "quote \" and back\\slash".to_string());
        }
        set_enabled(false);
        let doc = drain().to_chrome_json();
        let text = doc.to_pretty_string();
        let parsed = Json::parse(&text).expect("trace JSON must parse");
        let events = match parsed.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        // One metadata event + one X event.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(
            events[1].get("name").and_then(Json::as_str),
            Some("quote \" and back\\slash")
        );
        reset();
    }
}
