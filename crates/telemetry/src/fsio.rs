//! Crash-consistent file output.
//!
//! Every JSON artifact the workspace writes (run reports, LUT exports,
//! bench tables) goes through [`atomic_write`]: the bytes land in a
//! temporary file in the *same directory* as the target, are fsync'd, and
//! are then renamed over the destination. POSIX `rename(2)` within one
//! filesystem is atomic, so a reader — or a run killed at any instant —
//! observes either the complete old file or the complete new file, never
//! a truncated hybrid.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, then `rename` over the target (followed by a best-effort
/// directory fsync so the rename itself is durable).
///
/// On any error the temporary file is removed; the destination is either
/// untouched or fully replaced — never truncated.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] from create/write/sync/rename, or
/// [`io::ErrorKind::InvalidInput`] when `path` has no file name.
///
/// # Examples
///
/// ```
/// let dir = std::env::temp_dir();
/// let path = dir.join(format!("pi3d-fsio-doc-{}.json", std::process::id()));
/// pi3d_telemetry::fsio::atomic_write(&path, b"{\"ok\": true}").unwrap();
/// assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\": true}");
/// std::fs::remove_file(&path).unwrap();
/// ```
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    // Pid-qualified so concurrent processes targeting the same file never
    // share a temp file; same directory so the rename stays one-filesystem.
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));

    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }

    // Durability of the rename needs the directory entry flushed too; this
    // is best-effort because some platforms refuse to open directories.
    if let Ok(dir_handle) = File::open(&dir) {
        let _ = dir_handle.sync_all();
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn temp_target(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pi3d-fsio-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn writes_and_replaces() {
        let path = temp_target("replace");
        atomic_write(&path, b"first").expect("first write");
        assert_eq!(fs::read(&path).expect("read back"), b"first");
        atomic_write(&path, b"second, longer payload").expect("second write");
        assert_eq!(
            fs::read(&path).expect("read back"),
            b"second, longer payload"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let path = temp_target("clean");
        atomic_write(&path, b"payload").expect("write");
        let tmp = std::env::temp_dir().join(format!(
            ".{}.tmp.{}",
            path.file_name().expect("file name").to_string_lossy(),
            std::process::id()
        ));
        assert!(!tmp.exists(), "temp file survived: {}", tmp.display());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn bare_file_name_writes_to_cwd() {
        // A path with no parent component must not panic; clean up after.
        let name = format!("pi3d-fsio-bare-{}.json", std::process::id());
        atomic_write(Path::new(&name), b"x").expect("bare-name write");
        assert_eq!(fs::read(&name).expect("read back"), b"x");
        let _ = fs::remove_file(&name);
    }

    #[test]
    fn rejects_directory_like_targets() {
        let err = atomic_write(Path::new("/tmp/.."), b"x").expect_err("no file name");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
