//! RAII phase timers that aggregate into a per-run timing tree.
//!
//! [`span`] pushes a name onto a thread-local path stack and returns a
//! guard; when the guard drops, the elapsed time is folded into a global
//! table keyed by the slash-joined path (`"mesh_build/stamp"`). Nested
//! spans therefore produce a tree: children carry their parents' prefix,
//! and [`snapshot`] returns the aggregate per path, sorted so a parent
//! precedes its children.
//!
//! ```
//! use pi3d_telemetry::span;
//!
//! {
//!     let _solve = span::span("solve");
//!     let _cg = span::span("cg");
//!     // ... work ...
//! }
//! let phases = span::snapshot();
//! assert!(phases.iter().any(|p| p.path == "solve"));
//! assert!(phases.iter().any(|p| p.path == "solve/cg"));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

#[derive(Debug, Default, Clone, Copy)]
struct PhaseAgg {
    calls: u64,
    total_ns: u128,
}

fn table() -> MutexGuard<'static, BTreeMap<String, PhaseAgg>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, PhaseAgg>>> = OnceLock::new();
    TABLE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("span table poisoned")
}

thread_local! {
    static PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`span`]; records its elapsed time when dropped.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    depth: usize,
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        // Every phase span doubles as a trace slice when the flight
        // recorder is on (one relaxed load when it is off).
        crate::trace::complete_at("phase", self.name, self.start, elapsed);
        PATH.with(|p| {
            let mut stack = p.borrow_mut();
            // Guards dropped out of order (e.g. mem::forget games) would
            // desync the stack; truncate defensively to this span's depth.
            stack.truncate(self.depth);
            let path = stack.join("/");
            stack.pop();
            let mut tab = table();
            let agg = tab.entry(path).or_default();
            agg.calls += 1;
            agg.total_ns += elapsed.as_nanos();
        });
        if self.depth == 1 {
            // A closing top-level phase stamps the peak RSS reached by
            // its end (best-effort, Linux /proc).
            crate::mem::record_phase_peak(self.name);
        }
    }
}

/// Opens a named span under the innermost span open on this thread.
pub fn span(name: &'static str) -> Span {
    let depth = PATH.with(|p| {
        let mut stack = p.borrow_mut();
        stack.push(name);
        stack.len()
    });
    Span {
        name,
        start: Instant::now(),
        depth,
    }
}

/// Aggregate timing for one node of the phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Slash-joined span path, e.g. `"mesh_build/stamp"`.
    pub path: String,
    /// Times a span completed at this path.
    pub calls: u64,
    /// Total nanoseconds across all calls.
    pub total_ns: u128,
}

impl PhaseTiming {
    /// Nesting depth (number of path components minus one).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Last path component.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Copies the aggregated phase tree, path-sorted (parents before
/// children).
pub fn snapshot() -> Vec<PhaseTiming> {
    table()
        .iter()
        .map(|(path, agg)| PhaseTiming {
            path: path.clone(),
            calls: agg.calls,
            total_ns: agg.total_ns,
        })
        .collect()
}

/// Clears all aggregated timings (used between runs and in tests).
pub fn reset() {
    table().clear();
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    use crate::test_support::serial;

    fn phase<'a>(snap: &'a [PhaseTiming], path: &str) -> &'a PhaseTiming {
        snap.iter()
            .find(|p| p.path == path)
            .unwrap_or_else(|| panic!("missing phase {path:?}"))
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let _guard = serial();
        reset();
        {
            let _outer = span("t_outer");
            {
                let _inner = span("t_inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _inner = span("t_inner");
            }
        }
        let snap = snapshot();
        assert_eq!(phase(&snap, "t_outer").calls, 1);
        let inner = phase(&snap, "t_outer/t_inner");
        assert_eq!(inner.calls, 2);
        assert!(inner.total_ns >= 1_000_000);
        assert!(phase(&snap, "t_outer").total_ns >= inner.total_ns);
        assert_eq!(inner.depth(), 1);
        assert_eq!(inner.name(), "t_inner");
    }

    #[test]
    fn sibling_threads_do_not_nest_into_each_other() {
        let _guard = serial();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _sp = span("t_thread");
                });
            }
        });
        let snap = snapshot();
        assert_eq!(phase(&snap, "t_thread").calls, 4);
        assert!(!snap.iter().any(|p| p.path == "t_thread/t_thread"));
    }

    #[test]
    fn sequential_spans_at_top_level_aggregate() {
        let _guard = serial();
        reset();
        for _ in 0..3 {
            let _sp = span("t_seq");
        }
        assert_eq!(phase(&snapshot(), "t_seq").calls, 3);
    }
}
