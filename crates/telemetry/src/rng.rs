//! Seeded SplitMix64 pseudo-random generator.
//!
//! Replaces the `rand` crate (unavailable offline) for the synthetic
//! memory-request generator and the randomized property tests. SplitMix64
//! passes BigCrush, needs no state beyond one `u64`, and is trivially
//! reproducible: the same seed always yields the same stream on every
//! platform.
//!
//! ```
//! use pi3d_telemetry::rng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let p = a.next_f64();
//! assert!((0.0..1.0).contains(&p));
//! ```

/// SplitMix64 generator state (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift reduction without the rejection step;
    /// the bias is < 2⁻³² for the small bounds used here (row counts,
    /// die counts).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw from `[lo, hi)`; the range must be nonempty.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "range [{lo}, {hi}) is empty");
        lo + self.next_below(hi - lo)
    }

    /// Uniform draw from `[lo, hi)` over floats.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(0x0003_dd2a_2015);
        let mut b = SplitMix64::new(0x0003_dd2a_2015);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_first_output_for_seed_zero() {
        // Reference value from the published SplitMix64 algorithm.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn f64_draws_stay_in_unit_interval_and_vary() {
        let mut rng = SplitMix64::new(7);
        let draws: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        assert!(draws.iter().all(|p| (0.0..1.0).contains(p)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.4..0.6).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = rng.range(0, 8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = SplitMix64::new(13);
        let hits = (0..10_000).filter(|_| rng.chance(0.8)).count();
        assert!((7_600..8_400).contains(&hits), "hits {hits}");
    }
}
