//! Best-effort process-memory readings from `/proc` (std-only).
//!
//! Linux exposes the peak resident set as `VmHWM` in
//! `/proc/self/status` and the current resident set in
//! `/proc/self/statm`; both reads are a few microseconds. On platforms
//! without `/proc` every function returns `None` and no gauges are set —
//! memory tracking degrades silently rather than failing the run.

use crate::metrics;

/// Assumed page size for `/proc/self/statm` (Linux defaults to 4 KiB on
/// x86-64 and aarch64; std exposes no portable getter and this is a
/// best-effort diagnostic, not an accounting source of truth).
const PAGE_BYTES: u64 = 4096;

/// Peak resident set size in bytes (`VmHWM`), or `None` off-Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(parse_kb_field)
        .map(|kb| kb * 1024)
}

/// Current resident set size in bytes (`/proc/self/statm` field 2), or
/// `None` off-Linux.
pub fn current_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * PAGE_BYTES)
}

/// Parses the numeric part of a `/proc/self/status` value like
/// `"   12345 kB"`.
fn parse_kb_field(rest: &str) -> Option<u64> {
    rest.split_whitespace().next()?.parse().ok()
}

/// Records the peak RSS observed so far under the gauge
/// `mem.peak_rss_mb.<phase>`. Called from top-level [`crate::span::Span`]
/// drops, so every top-level phase carries the high-water mark reached
/// by its end. No-op when `/proc` is unavailable.
pub fn record_phase_peak(phase: &str) {
    if let Some(bytes) = peak_rss_bytes() {
        metrics::gauge(&format!("mem.peak_rss_mb.{phase}")).set(bytes as f64 / (1 << 20) as f64);
    }
}

/// Records the process-wide gauges `mem.peak_rss_mb` and
/// `mem.current_rss_mb`; called when a run report is collected. No-op
/// when `/proc` is unavailable.
pub fn record_process_peak() {
    if let Some(bytes) = peak_rss_bytes() {
        metrics::gauge("mem.peak_rss_mb").set(bytes as f64 / (1 << 20) as f64);
    }
    if let Some(bytes) = current_rss_bytes() {
        metrics::gauge("mem.current_rss_mb").set(bytes as f64 / (1 << 20) as f64);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn kb_field_parses_with_padding_and_unit() {
        assert_eq!(parse_kb_field("   12345 kB"), Some(12345));
        assert_eq!(parse_kb_field("0 kB"), Some(0));
        assert_eq!(parse_kb_field("  garbage"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_readings_are_plausible() {
        // A running test binary holds at least one page and at most a
        // terabyte.
        let peak = peak_rss_bytes().expect("Linux exposes VmHWM");
        assert!(peak > 4096 && peak < (1 << 40), "peak {peak}");
        let current = current_rss_bytes().expect("Linux exposes statm");
        assert!(current > 4096 && current < (1 << 40), "current {current}");
        // Peak is never below current at the time of the same read...
        // modulo racing allocations between the two reads; allow slack.
        assert!(peak * 2 >= current, "peak {peak} current {current}");
    }
}
