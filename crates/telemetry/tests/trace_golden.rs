//! Golden-shape tests for the Chrome trace-event export: a traced
//! multi-threaded run must produce a document that an independent parse
//! confirms is valid JSON, whose complete events are well-nested per
//! thread, and whose ring buffers degrade by dropping the *oldest*
//! events with an accurate drop count.

use pi3d_telemetry::trace;
use pi3d_telemetry::Json;
use std::sync::Mutex;

/// The tracer is process-global state; integration tests in this file
/// run on parallel test threads, so each takes this lock and resets the
/// recorder around its run.
static SERIAL: Mutex<()> = Mutex::new(());

fn with_clean_tracer<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    trace::reset();
    trace::set_capacity(trace::DEFAULT_CAPACITY);
    trace::set_enabled(true);
    let result = f();
    trace::set_enabled(false);
    trace::reset();
    result
}

/// One complete (`ph:"X"`) event pulled out of the exported JSON.
#[derive(Debug)]
struct Complete {
    tid: u64,
    name: String,
    ts: f64,
    dur: f64,
}

fn completes(doc: &Json) -> Vec<Complete> {
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| Complete {
            tid: e.get("tid").and_then(Json::as_num).expect("tid") as u64,
            name: e
                .get("name")
                .and_then(Json::as_str)
                .expect("name")
                .to_owned(),
            ts: e.get("ts").and_then(Json::as_num).expect("ts"),
            dur: e.get("dur").and_then(Json::as_num).expect("dur"),
        })
        .collect()
}

/// Timestamps are nanosecond-precise values exported in microseconds; two
/// nanoseconds of slack absorbs the f64 division rounding.
const EPS_US: f64 = 0.002;

/// Asserts the complete events of one thread form a proper tree: sorted
/// by start (ties longest-first), every event either starts after the
/// stack top ends or lies entirely inside it.
fn assert_well_nested(tid: u64, events: &mut Vec<&Complete>) {
    events.sort_by(|a, b| {
        (a.ts, b.dur)
            .partial_cmp(&(b.ts, a.dur))
            .expect("finite timestamps")
    });
    let mut stack: Vec<&Complete> = Vec::new();
    for ev in events.iter() {
        while let Some(top) = stack.last() {
            if ev.ts >= top.ts + top.dur - EPS_US {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            assert!(
                ev.ts + ev.dur <= top.ts + top.dur + EPS_US,
                "tid {tid}: {:?} straddles the end of {:?}",
                ev,
                top
            );
        }
        stack.push(ev);
    }
}

#[test]
fn traced_multithread_run_exports_well_nested_chrome_json() {
    let doc = with_clean_tracer(|| {
        {
            let _outer = trace::span("test", "outer");
            {
                let _inner = trace::span_with("test", || "inner[0]".to_owned());
                trace::instant("test", "tick");
            }
            trace::counter("test", "depth", 3.0);
        }
        std::thread::scope(|scope| {
            for worker in 0..3 {
                scope.spawn(move || {
                    let _unit = trace::span_with("jobs", || format!("unit[{worker}]"));
                    let _leaf = trace::span("jobs", "leaf");
                });
            }
        });
        trace::drain().to_chrome_json()
    });

    // The export must survive an independent reparse.
    let text = doc.to_pretty_string();
    let parsed = Json::parse(&text).expect("exported trace is valid JSON");
    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("schema"))
            .and_then(Json::as_str),
        Some(trace::TRACE_SCHEMA)
    );
    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(Json::as_num),
        Some(0.0)
    );

    // Every thread that recorded events is named by an M metadata event.
    let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let meta_tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .map(|e| e.get("tid").and_then(Json::as_num).expect("tid") as u64)
        .collect();
    let all = completes(&parsed);
    for ev in &all {
        assert!(meta_tids.contains(&ev.tid), "tid {} unnamed", ev.tid);
    }

    // Main thread plus three scoped workers, each well-nested.
    let tids: std::collections::HashSet<u64> = all.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), 4, "expected 4 traced threads: {tids:?}");
    for &tid in &tids {
        let mut own: Vec<&Complete> = all.iter().filter(|e| e.tid == tid).collect();
        assert_well_nested(tid, &mut own);
    }

    // The worker slices all made it, each with its leaf child.
    for worker in 0..3 {
        let unit = all
            .iter()
            .find(|e| e.name == format!("unit[{worker}]"))
            .expect("worker slice present");
        let leaf = all
            .iter()
            .find(|e| e.tid == unit.tid && e.name == "leaf")
            .expect("leaf slice present");
        assert!(leaf.ts >= unit.ts - EPS_US && leaf.dur <= unit.dur + EPS_US);
    }
}

#[test]
fn names_with_quotes_and_backslashes_round_trip() {
    let doc = with_clean_tracer(|| {
        let _span = trace::span_with("test", || r#"path "C:\tmp\x" done"#.to_owned());
        drop(_span);
        trace::drain().to_chrome_json()
    });
    let parsed = Json::parse(&doc.to_pretty_string()).expect("escaped names parse");
    let all = completes(&parsed);
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].name, r#"path "C:\tmp\x" done"#);
}

#[test]
fn ring_overflow_drops_oldest_and_reports_count() {
    let doc = with_clean_tracer(|| {
        trace::set_capacity(32);
        for i in 0..100 {
            trace::counter("test", "seq", i as f64);
        }
        trace::drain().to_chrome_json()
    });
    let parsed = Json::parse(&doc.to_pretty_string()).expect("overflowed trace parses");
    assert_eq!(
        parsed
            .get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(Json::as_num),
        Some(68.0)
    );
    let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let values: Vec<f64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_num)
                .expect("counter value")
        })
        .collect();
    // The newest 32 samples survive, in order; the oldest 68 are gone.
    let expected: Vec<f64> = (68..100).map(|i| i as f64).collect();
    assert_eq!(values, expected);
}
