/// DRAM read-path timing parameters, in memory-clock cycles.
///
/// These are the parameters the paper's Section 2.3 models (tCL, tRCD, tRP,
/// tRAS, tCCD) plus the two JEDEC bank-activation throttles (tRRD, tFAW)
/// that the *standard* scheduling policy uses in place of real IR-drop
/// knowledge.
///
/// # Examples
///
/// ```
/// use pi3d_memsim::TimingParams;
///
/// let t = TimingParams::ddr3_1600();
/// assert_eq!(t.t_rrd, 8);
/// assert_eq!(t.t_faw, 32);
/// assert_eq!(t.data_cycles(), 4); // burst 8 on a DDR bus
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// CAS latency: read command to first data.
    pub t_cl: u32,
    /// RAS-to-CAS delay: activate to read command.
    pub t_rcd: u32,
    /// Row precharge time.
    pub t_rp: u32,
    /// Minimum row-active time (activate to precharge).
    pub t_ras: u32,
    /// Column-to-column delay between read commands on one channel.
    pub t_ccd: u32,
    /// Row-to-row (activate-to-activate) delay — standard policy only.
    pub t_rrd: u32,
    /// Four-activate window — standard policy only.
    pub t_faw: u32,
    /// Burst length in bits per pin.
    pub burst_length: u32,
    /// Idle cycles after the last read before a bank is auto-closed to
    /// reduce IR drop (Section 2.3).
    pub idle_close: u32,
    /// Average refresh interval in cycles (`0` disables refresh — the
    /// paper's experiments run refresh-free read bursts).
    pub t_refi: u32,
    /// Refresh cycle time: cycles a die's banks are busy per refresh.
    pub t_rfc: u32,
    /// Memory clock period in nanoseconds.
    pub clock_ns: f64,
}

impl TimingParams {
    /// DDR3-1600 timings (800 MHz clock): the stacked-DDR3 benchmark.
    pub fn ddr3_1600() -> Self {
        TimingParams {
            t_cl: 11,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_ccd: 4,
            t_rrd: 8,
            t_faw: 32,
            burst_length: 8,
            idle_close: 3,
            t_refi: 0,
            t_rfc: 0,
            clock_ns: 1.25,
        }
    }

    /// DDR3-1600 with refresh enabled: tREFI 7.8 µs, tRFC 260 ns for a
    /// 4 Gb die (an extension over the paper's refresh-free runs).
    pub fn ddr3_1600_with_refresh() -> Self {
        TimingParams {
            t_refi: 6240,
            t_rfc: 208,
            ..Self::ddr3_1600()
        }
    }

    /// Wide I/O SDR timings (200 MHz clock, relaxed latencies in cycles).
    pub fn wide_io_200() -> Self {
        TimingParams {
            t_cl: 3,
            t_rcd: 3,
            t_rp: 3,
            t_ras: 8,
            t_ccd: 2,
            t_rrd: 2,
            t_faw: 8,
            burst_length: 4,
            idle_close: 4,
            t_refi: 0,
            t_rfc: 0,
            clock_ns: 5.0,
        }
    }

    /// HMC-style timings (1250 MHz internal clock).
    pub fn hmc_2500() -> Self {
        TimingParams {
            t_cl: 14,
            t_rcd: 14,
            t_rp: 14,
            t_ras: 34,
            t_ccd: 4,
            t_rrd: 6,
            t_faw: 24,
            burst_length: 8,
            idle_close: 8,
            t_refi: 0,
            t_rfc: 0,
            clock_ns: 0.8,
        }
    }

    /// Cycles the data bus is occupied by one burst (DDR: two bits per
    /// cycle per pin).
    pub fn data_cycles(&self) -> u32 {
        (self.burst_length / 2).max(1)
    }

    /// Converts a cycle count to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * self.clock_ns * 1e-3
    }

    /// Watchdog horizon for stall detection, shared by both run loops: a
    /// healthy controller never goes this many cycles without issuing a
    /// command (the longest legal gap is a few row cycles).
    pub(crate) fn stall_horizon(&self) -> u64 {
        100 * (self.t_ras + self.t_rp + self.t_rcd + self.t_cl) as u64 + 1_000
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_matches_paper_parameters() {
        let t = TimingParams::ddr3_1600();
        // The paper compares against a standard policy with tRRD 8, tFAW 32.
        assert_eq!((t.t_rrd, t.t_faw), (8, 32));
        // Burst of eight at DDR occupies 4 clock cycles.
        assert_eq!(t.data_cycles(), 4);
    }

    #[test]
    fn cycle_conversion_uses_clock_period() {
        let t = TimingParams::ddr3_1600();
        // 80_000 cycles at 1.25 ns = 100 us.
        assert!((t.cycles_to_us(80_000) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_variant_enables_refresh() {
        let t = TimingParams::ddr3_1600_with_refresh();
        assert!(t.t_refi > 0 && t.t_rfc > 0);
        // tREFI 6240 cycles at 1.25 ns = 7.8 us.
        assert!((t.t_refi as f64 * t.clock_ns * 1e-3 - 7.8).abs() < 0.01);
        assert_eq!(TimingParams::ddr3_1600().t_refi, 0);
    }

    #[test]
    fn ras_exceeds_rcd_plus_burst() {
        for t in [
            TimingParams::ddr3_1600(),
            TimingParams::wide_io_200(),
            TimingParams::hmc_2500(),
        ] {
            assert!(t.t_ras >= t.t_rcd + t.data_cycles());
            assert!(t.t_faw >= t.t_rrd);
        }
    }
}
