//! Cycle-accurate 3D DRAM memory-controller simulation with
//! IR-drop-aware read scheduling.
//!
//! This crate reproduces the architectural half of the paper's platform
//! (Sections 2.3 and 5): a per-bank, per-channel DRAM model with the read
//! timing parameters tCL/tRCD/tRP/tRAS/tCCD, a 32-entry request queue, a
//! synthetic locality-aware workload generator, and three read policies —
//! the JEDEC standard policy (tRRD/tFAW), the IR-drop-aware FCFS policy,
//! and the IR-drop-aware distributed-read (DistR) policy driven by an
//! [`IrDropLut`] produced by the R-Mesh engine.
//!
//! # Examples
//!
//! ```
//! use pi3d_layout::units::MilliVolts;
//! use pi3d_memsim::{
//!     IrDropLut, MemorySimulator, ReadPolicy, SimConfig, TimingParams, WorkloadSpec,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lut = IrDropLut::new(4);
//! lut.insert(&[0, 0, 0, 1], 1.0, MilliVolts(20.0));
//! // ... fill the rest from pi3d-core's LUT builder ...
//! # for a in 0..3u8 { for b in 0..3u8 { for c in 0..3u8 { for d in 0..3u8 {
//! #     for act in [0.25f64, 0.5, 1.0] {
//! #         lut.insert(&[a, b, c, d], act, MilliVolts(15.0));
//! #     }
//! # }}}}
//! let sim = MemorySimulator::new(
//!     TimingParams::ddr3_1600(),
//!     SimConfig::paper_ddr3(),
//!     ReadPolicy::ir_aware_distr(MilliVolts(24.0)),
//!     lut,
//! );
//! let mut workload = WorkloadSpec::paper_ddr3();
//! workload.count = 100;
//! let stats = sim.run(&workload.generate())?;
//! assert_eq!(stats.completed, 100);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
// Index-based loops are the clearer idiom in the numeric kernels below
// (parallel arrays with shared indices).
#![allow(clippy::needless_range_loop)]
#![warn(missing_debug_implementations)]

mod admission;
mod bank;
mod controller;
mod lut;
mod policy;
mod reference;
mod request;
mod stats;
mod timing;

pub use bank::{Bank, BankPhase};
pub use controller::{MemorySimulator, SimConfig, SimulateError, StallLutEntry, StallSnapshot};
pub use lut::{IrDropLut, ParseLutError};
pub use policy::{IrPolicy, ReadPolicy, SchedulingPolicy};
pub use request::{parse_trace, ParseTraceError, ReadRequest, WorkloadSpec};
pub use stats::SimStats;
pub use timing::TimingParams;
