use crate::admission::AdmissionCache;
use crate::bank::{Bank, BankPhase};
use crate::lut::IrDropLut;
use crate::policy::{IrPolicy, ReadPolicy, SchedulingPolicy};
use crate::request::ReadRequest;
use crate::stats::SimStats;
use crate::timing::TimingParams;
use pi3d_layout::units::MilliVolts;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Structural configuration of the simulated memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// DRAM dies in the stack.
    pub dies: usize,
    /// Banks per die.
    pub banks_per_die: usize,
    /// Independent channels (each with its own command/data bus).
    pub channels: usize,
    /// Request-queue capacity (the paper uses 32).
    pub queue_capacity: usize,
    /// Maximum simultaneously powered banks per die (the paper's
    /// interleaving mode caps this at two to protect the charge pumps).
    pub max_powered_per_die: usize,
    /// Simulation cycle budget enforced by the event loop (`0` =
    /// unlimited, the default). When the budget runs out before the
    /// request stream completes, [`MemorySimulator::run`] returns
    /// [`SimulateError::CycleBudgetExceeded`] carrying the statistics
    /// accumulated so far. The frozen per-cycle reference stepper ignores
    /// this field — the event/reference bit-equivalence contract covers
    /// uninterrupted runs.
    pub max_cycles: u64,
}

impl SimConfig {
    /// The paper's stacked-DDR3 system: 4 dies × 8 banks, one channel,
    /// a 32-entry queue, at most two powered banks per die, no cycle
    /// budget.
    pub fn paper_ddr3() -> Self {
        SimConfig {
            dies: 4,
            banks_per_die: 8,
            channels: 1,
            queue_capacity: 32,
            max_powered_per_die: 2,
            max_cycles: 0,
        }
    }
}

/// The lowest-IR single-activate option available when a run stalled.
///
/// If even this state violates the constraint, the constraint admits no
/// forward progress at the measured activity — the definitive diagnosis
/// for "IR constraint allows no state" failures.
#[derive(Debug, Clone, PartialEq)]
pub struct StallLutEntry {
    /// Die the hypothetical activate would target.
    pub die: usize,
    /// Per-die powered-bank counts after that activate.
    pub state: Vec<u8>,
    /// The LUT's IR drop (mV) for that state at the measured activity.
    pub ir_mv: f64,
}

/// Snapshot of the memory system at the moment a simulation stalled.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSnapshot {
    /// Powered-bank count per die as the LUT sees it (refreshing dies
    /// count at the interleave cap).
    pub per_die_powered: Vec<u8>,
    /// Requests waiting in the controller queue.
    pub queue_depth: usize,
    /// Measured I/O activity (sliding-window utilization, `0.0..=1.0`).
    pub io_activity: f64,
    /// IR-drop constraint (mV) the policy enforces, if any.
    pub constraint_mv: Option<f64>,
    /// The cheapest next activate the LUT offers, if any.
    pub tightest: Option<StallLutEntry>,
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "powered {:?}, queue depth {}, I/O activity {:.3}",
            self.per_die_powered, self.queue_depth, self.io_activity
        )?;
        if let Some(c) = self.constraint_mv {
            write!(f, ", constraint {c:.2} mV")?;
        }
        match &self.tightest {
            Some(t) => write!(
                f,
                ", cheapest activate: die {} -> {:?} at {:.2} mV",
                t.die, t.state, t.ir_mv
            ),
            None => write!(f, ", no activate state in the LUT"),
        }
    }
}

/// Error returned when a simulation cannot make progress.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimulateError {
    /// The controller stopped issuing commands (e.g. the IR constraint is
    /// below the drop of every single-bank state, so no activate is ever
    /// legal).
    Stalled {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Requests completed before the stall.
        completed: u64,
        /// Memory state and tightest LUT option at the stall point.
        snapshot: Box<StallSnapshot>,
    },
    /// The [`SimConfig::max_cycles`] budget ran out before the request
    /// stream completed. The statistics accumulated up to the cutoff are
    /// preserved in `partial`.
    CycleBudgetExceeded {
        /// Cycle at which the budget check fired.
        cycle: u64,
        /// Requests completed within the budget.
        completed: u64,
        /// The configured budget.
        max_cycles: u64,
        /// Statistics over the simulated prefix of the run.
        partial: Box<SimStats>,
    },
    /// The simulation was cancelled cooperatively (SIGINT or programmatic
    /// cancel) via [`MemorySimulator::with_cancel`].
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
        /// Requests completed before the cancellation.
        completed: u64,
        /// Statistics over the simulated prefix of the run.
        partial: Box<SimStats>,
    },
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::Stalled {
                cycle,
                completed,
                snapshot,
            } => write!(
                f,
                "simulation stalled at cycle {cycle} with {completed} requests completed \
                 (IR-drop constraint likely allows no memory state): {snapshot}"
            ),
            SimulateError::CycleBudgetExceeded {
                cycle,
                completed,
                max_cycles,
                ..
            } => write!(
                f,
                "simulation cycle budget of {max_cycles} exhausted at cycle {cycle} \
                 with {completed} requests completed"
            ),
            SimulateError::Cancelled {
                cycle, completed, ..
            } => write!(
                f,
                "simulation cancelled at cycle {cycle} with {completed} requests completed"
            ),
        }
    }
}

impl Error for SimulateError {}

/// Cycle-accurate 3D DRAM memory-controller simulator.
///
/// Models per-bank row state (activate / read / precharge with tRCD, tRAS,
/// tRP), per-channel command and data buses (tCL, tCCD, burst occupancy),
/// a bounded priority queue, the IR-drop lookup table, and the three read
/// policies of the paper's Section 5.2.
///
/// [`MemorySimulator::run`] advances time event-to-event (skipping cycles
/// where no command, arrival, retirement, refresh, or window transition
/// can occur) and memoizes LUT admission checks; it produces statistics
/// bit-identical to the plain per-cycle stepper kept as
/// [`MemorySimulator::run_reference`].
///
/// # Examples
///
/// ```
/// use pi3d_layout::units::MilliVolts;
/// use pi3d_memsim::{
///     IrDropLut, MemorySimulator, ReadPolicy, SimConfig, TimingParams, WorkloadSpec,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A flat LUT: every state is allowed.
/// let mut lut = IrDropLut::new(4);
/// # let states: Vec<Vec<u8>> = (0..81)
/// #     .map(|i| (0..4).map(|d| ((i / 3usize.pow(d)) % 3) as u8).collect())
/// #     .collect();
/// # for s in &states {
/// #     for act in [0.25, 0.5, 1.0] {
/// #         lut.insert(s, act, MilliVolts(10.0));
/// #     }
/// # }
/// let sim = MemorySimulator::new(
///     TimingParams::ddr3_1600(),
///     SimConfig::paper_ddr3(),
///     ReadPolicy::ir_aware_fcfs(MilliVolts(24.0)),
///     lut,
/// );
/// let mut workload = WorkloadSpec::paper_ddr3();
/// workload.count = 200;
/// let stats = sim.run(&workload.generate())?;
/// assert_eq!(stats.completed, 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemorySimulator {
    pub(crate) timing: TimingParams,
    pub(crate) config: SimConfig,
    pub(crate) policy: ReadPolicy,
    pub(crate) lut: IrDropLut,
    pub(crate) cancel: Option<pi3d_telemetry::CancelToken>,
}

#[derive(Debug)]
pub(crate) struct ChannelState {
    /// Cycle of the last read command (tCCD / data-bus spacing).
    pub(crate) last_read_cmd: Option<u64>,
    /// Activate history inside the tFAW window (standard policy).
    pub(crate) acts: VecDeque<u64>,
    /// Cycle of the last activate (tRRD, standard policy).
    pub(crate) last_act: Option<u64>,
}

/// Sliding-window measurement of per-die I/O activity (bus utilization).
///
/// The IR-drop-aware policies gate *reads* on the activity the read would
/// produce: issuing a read to a die raises that die's measured utilization,
/// and the LUT is consulted at the measured level. This is how the paper's
/// controller turns the IR constraint into read-rate throttling — inserting
/// bubbles when the state's full-rate IR would violate the cap — which
/// yields the smooth runtime-vs-constraint curves of Figure 9.
#[derive(Debug)]
pub(crate) struct ActivityWindow {
    pub(crate) window: u64,
    /// `(issue_cycle, die, data_cycles)` per recent read.
    pub(crate) events: VecDeque<(u64, usize, u32)>,
    /// Busy data-bus cycles per die within the window.
    pub(crate) busy: Vec<u64>,
}

impl ActivityWindow {
    pub(crate) fn new(dies: usize, window: u64) -> Self {
        ActivityWindow {
            window,
            events: VecDeque::new(),
            busy: vec![0; dies],
        }
    }

    pub(crate) fn prune(&mut self, cycle: u64) {
        while let Some(&(c, die, data)) = self.events.front() {
            if c + self.window <= cycle {
                self.busy[die] -= data as u64;
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    pub(crate) fn record(&mut self, cycle: u64, die: usize, data_cycles: u32) {
        self.events.push_back((cycle, die, data_cycles));
        self.busy[die] += data_cycles as u64;
    }

    /// Utilization of one die's I/O over the window.
    pub(crate) fn die_utilization(&self, die: usize) -> f64 {
        self.busy[die] as f64 / self.window as f64
    }

    /// The worst per-die utilization.
    pub(crate) fn max_utilization(&self) -> f64 {
        self.busy
            .iter()
            .map(|&b| b as f64 / self.window as f64)
            .fold(0.0, f64::max)
    }

    /// Busy cycles of one die (integer form, for exact cache keys).
    pub(crate) fn busy_int(&self, die: usize) -> u64 {
        self.busy[die]
    }

    /// The worst per-die busy count. `max_busy_int() / window` equals
    /// [`Self::max_utilization`] bit-for-bit: division by a positive
    /// constant is monotone, so the max of the quotients is the quotient
    /// of the max.
    pub(crate) fn max_busy_int(&self) -> u64 {
        self.busy.iter().copied().max().unwrap_or(0)
    }

    /// Cycle at which the oldest recorded read leaves the window (the
    /// next moment any busy count can decrease).
    pub(crate) fn next_expiry(&self) -> Option<u64> {
        self.events.front().map(|&(c, _, _)| c + self.window)
    }
}

impl MemorySimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the LUT's die count differs from the configuration's.
    pub fn new(
        timing: TimingParams,
        config: SimConfig,
        policy: ReadPolicy,
        lut: IrDropLut,
    ) -> Self {
        assert_eq!(lut.dies(), config.dies, "LUT die count mismatch");
        MemorySimulator {
            timing,
            config,
            policy,
            lut,
            cancel: None,
        }
    }

    /// Attaches a cancellation token polled once per simulated event by
    /// [`run`](Self::run); on cancellation the loop returns
    /// [`SimulateError::Cancelled`] carrying the statistics accumulated so
    /// far. The frozen reference stepper does not poll the token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: pi3d_telemetry::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The configured policy.
    pub fn policy(&self) -> ReadPolicy {
        self.policy
    }

    /// The timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Runs the request stream to completion, advancing time
    /// event-to-event.
    ///
    /// The scheduling semantics — and the returned [`SimStats`], bit for
    /// bit — match the per-cycle reference stepper
    /// ([`MemorySimulator::run_reference`]); see `DESIGN.md` §12 for the
    /// equivalence argument.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::Stalled`] if no forward progress is
    /// possible (an over-tight IR constraint), with a snapshot of the
    /// blocking state.
    pub fn run(&self, requests: &[ReadRequest]) -> Result<SimStats, SimulateError> {
        #[cfg(feature = "telemetry")]
        let _span = pi3d_telemetry::span::span("memsim_run");
        let t = &self.timing;
        let cfg = &self.config;
        // The event loop packs per-die powered counts into u64 nibbles.
        assert!(cfg.dies <= 16, "event scheduler supports at most 16 dies");
        assert!(
            cfg.banks_per_die <= 32,
            "open-bank tracking packs a die's banks into a u32"
        );
        assert!(
            cfg.max_powered_per_die < 16,
            "per-die powered-bank cap must fit a nibble"
        );
        // The scheduler admits requests in slice order and keeps the queue
        // in admission order, standing in for the reference's sort by id —
        // valid only if ids are strictly increasing (as `WorkloadSpec` and
        // `parse_trace` both guarantee).
        assert!(
            requests.windows(2).all(|w| w[0].id < w[1].id),
            "request ids must be strictly increasing in slice order"
        );
        let n = requests.len() as u64;

        let mut banks: Vec<Vec<Bank>> = vec![vec![Bank::new(); cfg.banks_per_die]; cfg.dies];
        let mut channels: Vec<ChannelState> = (0..cfg.channels)
            .map(|_| ChannelState {
                last_read_cmd: None,
                acts: VecDeque::new(),
                last_act: None,
            })
            .collect();
        let mut queue: Vec<ReadRequest> = Vec::with_capacity(cfg.queue_capacity);
        // Activity window: a few row cycles long, so throttling reacts on
        // the same timescale banks open and close.
        let mut activity = ActivityWindow::new(cfg.dies, 2 * t.t_faw.max(32) as u64);
        // Refresh bookkeeping (extension; disabled when t_refi == 0).
        let mut refresh_due: Vec<u64> = (0..cfg.dies)
            .map(|d| t.t_refi as u64 + (d as u64 * t.t_refi as u64) / cfg.dies.max(1) as u64)
            .collect();
        let mut refreshing_until: Vec<u64> = vec![0; cfg.dies];
        // Upper bound on every `refreshing_until`; lets the per-cycle
        // effective-state computation skip the die loop once all refreshes
        // have drained (the common case).
        let mut max_refreshing_until: u64 = 0;
        let mut refreshes: u64 = 0;
        let mut next_arrival = 0usize;
        let mut in_flight: Vec<(u64, ReadRequest)> = Vec::new();
        let mut act_for: HashMap<(usize, usize), u64> = HashMap::new();

        let mut cycle: u64 = 0;
        let mut completed: u64 = 0;
        let mut last_data_end: u64 = 0;
        let mut activates: u64 = 0;
        let mut precharges: u64 = 0;
        let mut row_hits: u64 = 0;
        let mut latency_sum: f64 = 0.0;
        let mut queue_depth_sum: f64 = 0.0;
        let mut stall_cycles: u64 = 0;
        let mut max_ir = MilliVolts(0.0);
        let mut last_progress_cycle: u64 = 0;

        // Incremental mirror of the per-die powered-bank counts, kept in
        // both vector and nibble-packed form; updated at the only two
        // mutation points (activate, precharge) so no cycle rescans banks.
        let mut powered: Vec<u8> = vec![0; cfg.dies];
        let mut powered_key: u64 = 0;
        let mut cache = AdmissionCache::new(cfg.dies, activity.window, t.data_cycles());
        // Reused scheduling scratch (the reference allocates per cycle).
        let mut order: Vec<usize> = Vec::new();
        // Per-channel admission memos: `read_allowed`/`activate_allowed`
        // depend only on the die (and, for tRRD/tFAW, the channel), so one
        // verdict per die serves every candidate in the scan. Valid within
        // a channel's scan because state is immutable until a command
        // issues, which ends the scan.
        let mut read_ok: Vec<Option<bool>> = vec![None; cfg.dies];
        let mut act_ok: Vec<Option<bool>> = vec![None; cfg.dies];
        // Per-die refresh gate scratch (filled per cycle when refresh is
        // enabled; permanently false otherwise).
        let mut die_refreshing: Vec<bool> = vec![false; cfg.dies];
        let mut die_refresh_pending: Vec<bool> = vec![false; cfg.dies];
        // Per-die bitmask of banks with a row open (or opening); mirrors
        // `powered` bank-by-bank so the auto-close pass visits only open
        // banks instead of every bank slot.
        let mut open_mask: Vec<u32> = vec![0; cfg.dies];
        // Banks with a precharge (possibly long finished) in flight; bits
        // are set at precharge and cleared lazily by the candidate scan,
        // so `open | precharging` covers every bank that can still owe a
        // timing candidate.
        let mut precharging_mask: Vec<u32> = vec![0; cfg.dies];
        // DistR priority buckets, one per powered level, reused per cycle.
        let mut level_bufs: Vec<Vec<usize>> = vec![Vec::new(); cfg.max_powered_per_die + 1];
        // Step-6 memo: the (effective state, busy window) pair repeats for
        // runs of cycles; `max` is idempotent, so re-looking it up is
        // pure waste.
        let mut last_tracked: Option<(u64, u64)> = None;
        let mut simulated_cycles: u64 = 0;
        let mut skipped_cycles: u64 = 0;

        let stall_horizon = t.stall_horizon();
        let spacing = t.t_ccd.max(t.data_cycles()) as u64;
        let idle_close = t.idle_close as u64;
        let starve = (8 * t.idle_close).max(t.t_ras) as u64;
        let standard = matches!(self.policy.ir, IrPolicy::Standard);

        // Flight-recorder view of the event loop: one `events[a..b)`
        // slice per block of simulated events plus counter tracks
        // (queue depth, completions, admission-cache hits/misses)
        // sampled at block boundaries. Individual events are far too
        // fine to trace one-by-one; when tracing is off this costs one
        // integer modulo per event.
        #[cfg(feature = "telemetry")]
        const EVENT_TRACE_BLOCK: u64 = 8192;
        #[cfg(feature = "telemetry")]
        let mut _event_block = pi3d_telemetry::trace::span_with("memsim", || {
            format!("events[0..{EVENT_TRACE_BLOCK})")
        });

        while completed < n {
            // Budget and cancellation gates, polled once per simulated
            // event (each event is real scheduling work, so the clock
            // compare and atomic load are noise). Both exits carry the
            // statistics accumulated so far.
            if cfg.max_cycles > 0 && cycle >= cfg.max_cycles {
                #[cfg(feature = "telemetry")]
                pi3d_telemetry::metrics::counter("memsim.cycle_budget_exceeded").incr(1);
                return Err(SimulateError::CycleBudgetExceeded {
                    cycle,
                    completed,
                    max_cycles: cfg.max_cycles,
                    partial: Box::new(accumulated_stats(
                        t,
                        refreshes,
                        completed,
                        last_data_end,
                        activates,
                        precharges,
                        row_hits,
                        latency_sum,
                        queue_depth_sum,
                        cycle.max(1),
                        stall_cycles,
                        max_ir,
                    )),
                });
            }
            if self
                .cancel
                .as_ref()
                .is_some_and(pi3d_telemetry::CancelToken::is_cancelled)
            {
                #[cfg(feature = "telemetry")]
                pi3d_telemetry::metrics::counter("memsim.cancelled").incr(1);
                return Err(SimulateError::Cancelled {
                    cycle,
                    completed,
                    partial: Box::new(accumulated_stats(
                        t,
                        refreshes,
                        completed,
                        last_data_end,
                        activates,
                        precharges,
                        row_hits,
                        latency_sum,
                        queue_depth_sum,
                        cycle.max(1),
                        stall_cycles,
                        max_ir,
                    )),
                });
            }
            simulated_cycles += 1;
            #[cfg(feature = "telemetry")]
            if simulated_cycles.is_multiple_of(EVENT_TRACE_BLOCK) {
                use pi3d_telemetry::trace;
                // End the finished block before opening its successor so
                // sibling slices never overlap.
                _event_block = trace::noop();
                _event_block = trace::span_with("memsim", || {
                    format!(
                        "events[{simulated_cycles}..{})",
                        simulated_cycles + EVENT_TRACE_BLOCK
                    )
                });
                trace::counter("memsim", "queue_depth", queue.len() as f64);
                trace::counter("memsim", "completed", completed as f64);
                trace::counter("memsim", "admission_cache_hits", cache.hits as f64);
                trace::counter("memsim", "admission_cache_misses", cache.misses as f64);
            }
            // Set when this cycle mutates scheduler-visible state in a way
            // whose follow-on consequences are not covered by a timing
            // candidate below; forces the next cycle to be simulated.
            let mut changed = false;
            activity.prune(cycle);
            // tFAW history older than the window can never pass the
            // reference's filter again, so dropping it is observation-free
            // (the reference keeps the full history and filters). Only the
            // standard policy consults the history at all, so the IR-aware
            // policies skip recording it entirely.
            if standard {
                for ch in channels.iter_mut() {
                    while ch
                        .acts
                        .front()
                        .is_some_and(|&a| a + t.t_faw as u64 <= cycle)
                    {
                        ch.acts.pop_front();
                    }
                }
            }

            // 1. Bank state machines advance lazily: the `_at` predicates
            // below resolve finished activations/precharges on the fly,
            // and a real `tick` runs only right before a mutation. Ticking
            // all banks every cycle is the reference's job.

            // 2. Retire finished data transfers.
            let mut i = 0;
            while i < in_flight.len() {
                if in_flight[i].0 <= cycle {
                    let (done, req) = in_flight.swap_remove(i);
                    completed += 1;
                    latency_sum += (done - req.arrival) as f64;
                    last_data_end = last_data_end.max(done);
                    last_progress_cycle = cycle;
                } else {
                    i += 1;
                }
            }

            // 3. Accept arrivals into the bounded queue.
            while next_arrival < requests.len()
                && requests[next_arrival].arrival <= cycle
                && queue.len() < cfg.queue_capacity
            {
                queue.push(requests[next_arrival]);
                next_arrival += 1;
            }

            // 3b. Refresh (extension): when a die's refresh is due, stop
            // activating it; once its banks drain, run an all-bank refresh
            // for tRFC cycles (staggered across dies at construction).
            if t.t_refi > 0 {
                for die in 0..cfg.dies {
                    if cycle >= refresh_due[die]
                        && cycle >= refreshing_until[die]
                        && banks[die].iter().all(|b| b.can_activate_at(cycle))
                    {
                        refreshing_until[die] = cycle + t.t_rfc as u64;
                        max_refreshing_until = max_refreshing_until.max(refreshing_until[die]);
                        refresh_due[die] = cycle + t.t_refi as u64;
                        refreshes += 1;
                        last_progress_cycle = cycle;
                        changed = true;
                        #[cfg(feature = "telemetry")]
                        pi3d_telemetry::trace::instant("memsim", "refresh");
                    }
                }
            }

            // 4. IR-drop-motivated auto-close of banks nobody wants. The
            // cheap idle/tRAS gates come first so the O(queue) wanted-scan
            // only runs for banks actually eligible to close (`starve` is
            // always >= `idle_close`, so `idle < idle_close` rules out both
            // arms).
            for die in 0..cfg.dies {
                let mut m = open_mask[die];
                while m != 0 {
                    let bk = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let bank = &banks[die][bk];
                    let open = bank.open_row().expect("open-mask bank has a row");
                    let idle = bank.idle_for(cycle);
                    if idle < idle_close || !bank.can_precharge_at(cycle) {
                        continue;
                    }
                    // A row nobody wants closes after `idle_close`; a
                    // wanted row still closes after a long starvation
                    // period so a narrow reorder window cannot pin the
                    // die's bank budget forever.
                    let wanted = queue
                        .iter()
                        .any(|r| r.die == die && r.bank == bk && r.row == open);
                    if !wanted || idle >= starve {
                        banks[die][bk].tick(cycle);
                        banks[die][bk].precharge(cycle, t.t_rp);
                        open_mask[die] &= !(1 << bk);
                        precharging_mask[die] |= 1 << bk;
                        powered[die] -= 1;
                        powered_key -= 1 << (4 * die);
                        precharges += 1;
                        changed = true;
                    }
                }
            }

            // Per-die refresh gates, hoisted so the candidate scan reads a
            // bool instead of re-deriving both comparisons per request.
            if t.t_refi > 0 {
                for die in 0..cfg.dies {
                    die_refreshing[die] = cycle < refreshing_until[die];
                    die_refresh_pending[die] = cycle >= refresh_due[die];
                }
            }

            // 5. Issue at most one command per channel. The queue is kept
            // in admission (= id) order, so FCFS priority needs no sort at
            // all, and DistR's (powered, id) priority falls out of a
            // counting pass per powered level — each level collects in id
            // order, matching the reference's stable comparator sort.
            let mut issued_this_cycle = false;
            for ch in 0..cfg.channels {
                order.clear();
                match self.policy.scheduling {
                    SchedulingPolicy::Fcfs if cfg.channels == 1 => {
                        order.extend(0..queue.len());
                    }
                    SchedulingPolicy::Fcfs => {
                        order.extend((0..queue.len()).filter(|&i| queue[i].channel == ch));
                    }
                    SchedulingPolicy::DistributedRead => {
                        // Single bucketed pass (admission caps powered
                        // counts at `max_powered_per_die`, so the levels
                        // are exhaustive); each bucket collects in id
                        // order, so the concatenation reproduces the
                        // reference's stable (powered, id) sort.
                        for buf in level_bufs.iter_mut() {
                            buf.clear();
                        }
                        for i in 0..queue.len() {
                            if queue[i].channel == ch {
                                level_bufs[powered[queue[i].die] as usize].push(i);
                            }
                        }
                        for buf in level_bufs.iter() {
                            order.extend_from_slice(buf);
                        }
                    }
                }
                let eligible = order.len();
                order.truncate(self.policy.reorder_window());

                // Data-bus spacing (tCCD and burst occupancy) is a
                // channel-level property; admission verdicts are die-level.
                // Both are hoisted out of the candidate scan.
                let spacing_ok = channels[ch]
                    .last_read_cmd
                    .is_none_or(|last| cycle >= last + spacing);
                read_ok.iter_mut().for_each(|v| *v = None);
                act_ok.iter_mut().for_each(|v| *v = None);

                let mut issued = false;
                for (pos, &qi) in order.iter().enumerate() {
                    let req = queue[qi];
                    if die_refreshing[req.die] {
                        continue; // die busy refreshing
                    }
                    let refresh_pending = die_refresh_pending[req.die];
                    let bank = &banks[req.die][req.bank];
                    if bank.can_read_at(cycle, req.row) {
                        let ok = spacing_ok
                            && *read_ok[req.die].get_or_insert_with(|| {
                                self.read_allowed_cached(
                                    &mut cache,
                                    powered_key,
                                    &activity,
                                    req.die,
                                )
                            });
                        if ok {
                            banks[req.die][req.bank].tick(cycle);
                            banks[req.die][req.bank].read(cycle, req.row);
                            activity.record(cycle, req.die, t.data_cycles());
                            channels[ch].last_read_cmd = Some(cycle);
                            let done = cycle + t.t_cl as u64 + t.data_cycles() as u64;
                            if act_for.get(&(req.die, req.bank)) != Some(&req.id) {
                                row_hits += 1;
                            }
                            in_flight.push((done, req));
                            // Shifting removal keeps the queue in id order,
                            // which is what lets the FCFS/DistR priority
                            // passes above skip the comparator sort.
                            queue.remove(qi);
                            issued = true;
                            // Issuing breaks the priority scan (one command
                            // per channel per cycle), so any candidate after
                            // this one was MASKED, not rejected: it may be
                            // issuable next cycle with no timing event of
                            // its own. Removing a queue entry can also pull
                            // a request into a finite reorder window. Either
                            // way the next cycle must be simulated.
                            if pos + 1 < order.len() || eligible > self.policy.reorder_window() {
                                changed = true;
                            }
                            last_progress_cycle = cycle;
                        }
                    } else if bank.open_row().is_some() && bank.open_row() != Some(req.row) {
                        if banks[req.die][req.bank].can_precharge_at(cycle) {
                            banks[req.die][req.bank].tick(cycle);
                            banks[req.die][req.bank].precharge(cycle, t.t_rp);
                            open_mask[req.die] &= !(1 << req.bank);
                            precharging_mask[req.die] |= 1 << req.bank;
                            powered[req.die] -= 1;
                            powered_key -= 1 << (4 * req.die);
                            precharges += 1;
                            issued = true;
                            changed = true;
                            last_progress_cycle = cycle;
                        }
                    } else if bank.can_activate_at(cycle)
                        && !refresh_pending
                        && *act_ok[req.die].get_or_insert_with(|| {
                            self.activate_allowed_cached(
                                &mut cache,
                                &powered,
                                powered_key,
                                &channels[ch],
                                &activity,
                                req.die,
                                cycle,
                            )
                        })
                    {
                        banks[req.die][req.bank].tick(cycle);
                        banks[req.die][req.bank].activate(cycle, req.row, t.t_rcd, t.t_ras);
                        open_mask[req.die] |= 1 << req.bank;
                        powered[req.die] += 1;
                        powered_key += 1 << (4 * req.die);
                        act_for.insert((req.die, req.bank), req.id);
                        channels[ch].last_act = Some(cycle);
                        if standard {
                            channels[ch].acts.push_back(cycle);
                        }
                        activates += 1;
                        issued = true;
                        // Same masking argument as the read branch: the
                        // break below hides every later candidate, which may
                        // be immediately issuable (e.g. a row-hit read on
                        // another bank) with no timer to wake us.
                        if pos + 1 < order.len() {
                            changed = true;
                        }
                        last_progress_cycle = cycle;
                    }
                    if issued {
                        break;
                    }
                }
                issued_this_cycle |= issued;
            }
            if !queue.is_empty() && !issued_this_cycle {
                stall_cycles += 1;
            }

            // 6. Track the IR drop of the state we are in, at the I/O
            // activity actually measured over the sliding window. The
            // nibble-packed key equals the reference's per-die count vector
            // (with refreshing dies overridden to the interleave cap), and
            // the cached lookup reproduces its f64 inputs exactly.
            let mut eff_key = powered_key;
            if cycle < max_refreshing_until {
                for die in 0..cfg.dies {
                    if cycle < refreshing_until[die] {
                        eff_key = (eff_key & !(0xFu64 << (4 * die)))
                            | ((cfg.max_powered_per_die as u64) << (4 * die));
                    }
                }
            }
            let busy_max = activity.max_busy_int();
            if eff_key != 0 && last_tracked != Some((eff_key, busy_max)) {
                last_tracked = Some((eff_key, busy_max));
                if let Some(ir) = cache.state_ir_at_max(&self.lut, eff_key, busy_max) {
                    max_ir = max_ir.max(ir);
                }
            }

            queue_depth_sum += queue.len() as f64;
            cycle += 1;

            if cycle - last_progress_cycle > stall_horizon {
                return Err(self.stalled(
                    cycle,
                    completed,
                    eff_key,
                    busy_max,
                    queue.len(),
                    activity.window,
                ));
            }
            if completed >= n {
                break;
            }
            // A changed cycle forces `next == cycle` regardless of any
            // timer, so the candidate scan below would be pure overhead —
            // and under saturation most cycles are changed cycles.
            if changed {
                continue;
            }

            // Next interesting cycle: the earliest time any body step could
            // act differently from a verbatim no-op. Between here and
            // `next` the state is provably constant, so the skipped cycles
            // contribute only their (constant) queue-depth and stall
            // accounting.
            let mut next = u64::MAX;
            let mut upd = |c: u64| {
                if c >= cycle && c < next {
                    next = c;
                }
            };
            if next_arrival < requests.len() && queue.len() < cfg.queue_capacity {
                upd(requests[next_arrival].arrival.max(cycle));
            }
            // Only banks in `open | precharging` can owe a candidate: the
            // rest are settled Idle. Stored phases may be stale under lazy
            // ticking: an Activating bank whose tRCD already elapsed
            // behaves as Active (and its ready_at is in the past, which
            // `upd` would otherwise clamp to `cycle`, forcing a spurious
            // simulation of every cycle). A stale Precharging bank behaves
            // as Idle; its expired bit is dropped here.
            for die in 0..cfg.dies {
                let mut m = open_mask[die] | precharging_mask[die];
                while m != 0 {
                    let bk = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let b = &banks[die][bk];
                    match b.phase() {
                        BankPhase::Activating { ready_at, .. } if ready_at >= cycle => {
                            upd(ready_at);
                        }
                        BankPhase::Activating { .. } | BankPhase::Active { .. } => {
                            upd(b.ras_ready_at());
                            let last_use = b.last_use_at();
                            upd(last_use + idle_close);
                            upd(last_use + starve);
                            precharging_mask[die] &= !(1 << bk);
                        }
                        BankPhase::Precharging { idle_at } => {
                            if idle_at >= cycle {
                                upd(idle_at);
                            } else {
                                precharging_mask[die] &= !(1 << bk);
                            }
                        }
                        BankPhase::Idle => {
                            precharging_mask[die] &= !(1 << bk);
                        }
                    }
                }
            }
            for ch in channels.iter() {
                if let Some(last) = ch.last_read_cmd {
                    upd(last + spacing);
                }
                if standard {
                    if let Some(last) = ch.last_act {
                        upd(last + t.t_rrd as u64);
                    }
                    for &a in ch.acts.iter() {
                        upd(a + t.t_faw as u64);
                    }
                }
            }
            if t.t_refi > 0 {
                for die in 0..cfg.dies {
                    upd(refresh_due[die]);
                    upd(refreshing_until[die]);
                }
            }
            if let Some(expiry) = activity.next_expiry() {
                upd(expiry);
            }

            // Completions are scheduler-invisible — they touch only the
            // completion statistics, never the queue, banks, or admission
            // state — so any that fall before the next real event retire
            // inline here instead of waking the whole body for nothing.
            if !in_flight.is_empty() {
                let mut last_done = 0u64;
                let mut i = 0;
                while i < in_flight.len() {
                    let (done, req) = in_flight[i];
                    if done < next {
                        in_flight.swap_remove(i);
                        completed += 1;
                        latency_sum += (done - req.arrival) as f64;
                        last_data_end = last_data_end.max(done);
                        last_done = last_done.max(done);
                    } else {
                        i += 1;
                    }
                }
                if last_done > 0 {
                    last_progress_cycle = last_progress_cycle.max(last_done);
                    if completed >= n {
                        // The reference's final body ran at the last
                        // completion cycle, leaving its cycle counter (the
                        // avg-queue-depth denominator) one past it. The
                        // queue is empty here, so the intervening cycles
                        // accrue no depth or stall.
                        debug_assert!(queue.is_empty() && next_arrival == requests.len());
                        skipped_cycles += last_done + 1 - cycle;
                        cycle = last_done + 1;
                        continue;
                    }
                }
            }

            let horizon_cycle = last_progress_cycle + stall_horizon + 1;
            if horizon_cycle <= next {
                // The reference would step through identical no-op cycles
                // until its watchdog fires at exactly `horizon_cycle`.
                return Err(self.stalled(
                    horizon_cycle,
                    completed,
                    eff_key,
                    busy_max,
                    queue.len(),
                    activity.window,
                ));
            }
            if next > cycle {
                let gap = next - cycle;
                skipped_cycles += gap;
                queue_depth_sum += gap as f64 * queue.len() as f64;
                if !queue.is_empty() {
                    stall_cycles += gap;
                }
                cycle = next;
            }
        }

        let stats = accumulated_stats(
            t,
            refreshes,
            completed,
            last_data_end,
            activates,
            precharges,
            row_hits,
            latency_sum,
            queue_depth_sum,
            cycle,
            stall_cycles,
            max_ir,
        );
        #[cfg(feature = "telemetry")]
        {
            use pi3d_telemetry::{metrics, report};
            metrics::counter("memsim.runs").incr(1);
            metrics::counter("memsim.cycles").incr(stats.cycles);
            metrics::counter("memsim.completed").incr(stats.completed);
            metrics::counter("memsim.stall_cycles").incr(stats.stall_cycles);
            metrics::counter("memsim.events.simulated_cycles").incr(simulated_cycles);
            metrics::counter("memsim.events.skipped_cycles").incr(skipped_cycles);
            metrics::counter("memsim.admission_cache.hits").incr(cache.hits);
            metrics::counter("memsim.admission_cache.misses").incr(cache.misses);
            report::record_policy_stats(report::PolicyStatsRecord {
                label: format!("{}x{} requests", cfg.dies, n),
                policy: self.policy.name().to_string(),
                cycles: stats.cycles,
                completed: stats.completed,
                row_hit_rate: stats.row_hit_rate(),
                avg_queue_depth: stats.avg_queue_depth,
                stall_cycles: stats.stall_cycles,
                max_ir_mv: stats.max_ir.value(),
            });
            pi3d_telemetry::debug!(
                "memsim {} run: {} cycles ({} simulated, {} skipped), {} completed, \
                 {} stalls, max IR {:.1} mV",
                self.policy.name(),
                stats.cycles,
                simulated_cycles,
                skipped_cycles,
                stats.completed,
                stats.stall_cycles,
                stats.max_ir.value()
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (simulated_cycles, skipped_cycles, cache.hits, cache.misses);
        Ok(stats)
    }

    /// Cached equivalent of the reference `read_allowed`: whether issuing
    /// a read to `die` keeps the IR-drop constraint met at the utilization
    /// the read produces (IR-aware policies only).
    fn read_allowed_cached(
        &self,
        cache: &mut AdmissionCache,
        powered_key: u64,
        activity: &ActivityWindow,
        die: usize,
    ) -> bool {
        let IrPolicy::IrAware { constraint } = self.policy.ir else {
            return true;
        };
        match cache.read_ir(
            &self.lut,
            powered_key,
            activity.busy_int(die),
            activity.max_busy_int(),
        ) {
            Some(ir) => ir.value() <= constraint.value() + 1e-9,
            None => false,
        }
    }

    /// Cached equivalent of the reference `activate_allowed`.
    #[allow(clippy::too_many_arguments)]
    fn activate_allowed_cached(
        &self,
        cache: &mut AdmissionCache,
        powered: &[u8],
        powered_key: u64,
        channel: &ChannelState,
        activity: &ActivityWindow,
        die: usize,
        cycle: u64,
    ) -> bool {
        // Charge-pump limit: at most N powered banks per die.
        if powered[die] as usize >= self.config.max_powered_per_die {
            return false;
        }
        match self.policy.ir {
            IrPolicy::Standard => {
                let t = &self.timing;
                if let Some(last) = channel.last_act {
                    if cycle < last + t.t_rrd as u64 {
                        return false;
                    }
                }
                let window_start = cycle.saturating_sub(t.t_faw as u64);
                let recent = channel.acts.iter().filter(|&&a| a > window_start).count();
                recent < 4
            }
            IrPolicy::IrAware { constraint } => {
                // The prospective state must meet the constraint at the
                // currently measured I/O activity (reads are gated
                // separately, so the activity cannot silently grow past
                // the cap afterwards).
                match cache.state_ir_at_max(
                    &self.lut,
                    powered_key + (1 << (4 * die)),
                    activity.max_busy_int(),
                ) {
                    Some(ir) => ir.value() <= constraint.value() + 1e-9,
                    None => false,
                }
            }
        }
    }

    /// Builds a [`SimulateError::Stalled`] from the packed step-6
    /// observables of the last executed cycle.
    fn stalled(
        &self,
        cycle: u64,
        completed: u64,
        eff_key: u64,
        busy_max: u64,
        queue_depth: usize,
        window: u64,
    ) -> SimulateError {
        let counts: Vec<u8> = (0..self.config.dies)
            .map(|d| ((eff_key >> (4 * d)) & 0xF) as u8)
            .collect();
        let io = (busy_max as f64 / window as f64).min(1.0);
        SimulateError::Stalled {
            cycle,
            completed,
            snapshot: self.stall_snapshot(counts, io, queue_depth),
        }
    }

    /// Diagnostic snapshot shared by both run loops: records the state the
    /// controller was pinned in and the cheapest activate the LUT offers
    /// from it, so over-tight constraints are explainable without a rerun.
    pub(crate) fn stall_snapshot(
        &self,
        per_die_powered: Vec<u8>,
        io_activity: f64,
        queue_depth: usize,
    ) -> Box<StallSnapshot> {
        let constraint_mv = match self.policy.ir {
            IrPolicy::IrAware { constraint } => Some(constraint.value()),
            IrPolicy::Standard => None,
        };
        let mut tightest: Option<StallLutEntry> = None;
        for die in 0..self.config.dies {
            if per_die_powered[die] as usize >= self.config.max_powered_per_die {
                continue;
            }
            let mut state = per_die_powered.clone();
            state[die] += 1;
            if let Some(ir) = self.lut.lookup(&state, io_activity) {
                if tightest.as_ref().is_none_or(|t| ir.value() < t.ir_mv) {
                    tightest = Some(StallLutEntry {
                        die,
                        state,
                        ir_mv: ir.value(),
                    });
                }
            }
        }
        Box::new(StallSnapshot {
            per_die_powered,
            queue_depth,
            io_activity,
            constraint_mv,
            tightest,
        })
    }
}

/// Folds the event loop's accumulators into a [`SimStats`]; shared by the
/// normal completion path and the budget/cancel exits so partial results
/// use exactly the completed run's arithmetic.
#[allow(clippy::too_many_arguments)]
fn accumulated_stats(
    t: &TimingParams,
    refreshes: u64,
    completed: u64,
    last_data_end: u64,
    activates: u64,
    precharges: u64,
    row_hits: u64,
    latency_sum: f64,
    queue_depth_sum: f64,
    cycle: u64,
    stall_cycles: u64,
    max_ir: MilliVolts,
) -> SimStats {
    let cycles = last_data_end.max(1);
    SimStats {
        refreshes,
        cycles,
        runtime_us: t.cycles_to_us(cycles),
        completed,
        bandwidth_reads_per_clk: completed as f64 / cycles as f64,
        max_ir,
        activates,
        precharges,
        row_hits,
        avg_latency_cycles: if completed > 0 {
            latency_sum / completed as f64
        } else {
            0.0
        },
        avg_queue_depth: queue_depth_sum / cycle as f64,
        stall_cycles,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::request::WorkloadSpec;

    /// A synthetic LUT shaped like the real platform's: IR grows with the
    /// per-die bank count and shrinks when activity spreads across dies.
    fn synthetic_lut(dies: usize) -> IrDropLut {
        let mut lut = IrDropLut::new(dies);
        let states = all_states(dies, 2);
        for s in &states {
            for &act in &[0.25f64, 0.5, 1.0] {
                let worst = *s.iter().max().expect("nonempty") as f64;
                let total: u8 = s.iter().sum();
                // Imbalanced, high-activity states hurt the most.
                let ir = 6.0 + 9.0 * worst * (0.4 + 0.6 * act) + 1.2 * total as f64;
                lut.insert(s, act, MilliVolts(ir));
            }
        }
        lut
    }

    fn all_states(dies: usize, max: u8) -> Vec<Vec<u8>> {
        let mut states = vec![vec![]];
        for _ in 0..dies {
            states = states
                .into_iter()
                .flat_map(|s| {
                    (0..=max).map(move |c| {
                        let mut s = s.clone();
                        s.push(c);
                        s
                    })
                })
                .collect();
        }
        states
    }

    fn small_workload(count: usize) -> Vec<crate::ReadRequest> {
        let mut spec = WorkloadSpec::paper_ddr3();
        spec.count = count;
        spec.generate()
    }

    fn sim(policy: ReadPolicy) -> MemorySimulator {
        MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            policy,
            synthetic_lut(4),
        )
    }

    #[test]
    fn all_requests_complete_under_every_policy() {
        let reqs = small_workload(500);
        for policy in [
            ReadPolicy::standard(),
            ReadPolicy::ir_aware_fcfs(MilliVolts(40.0)),
            ReadPolicy::ir_aware_distr(MilliVolts(40.0)),
        ] {
            let stats = sim(policy).run(&reqs).expect("completes");
            assert_eq!(stats.completed, 500, "{}", policy.name());
            assert!(stats.bandwidth_reads_per_clk > 0.0);
            assert!(stats.runtime_us > 0.0);
        }
    }

    #[test]
    fn ir_aware_never_exceeds_its_constraint() {
        let reqs = small_workload(800);
        let constraint = MilliVolts(26.0);
        let stats = sim(ReadPolicy::ir_aware_fcfs(constraint))
            .run(&reqs)
            .unwrap();
        assert!(
            stats.max_ir.value() <= constraint.value() + 1e-9,
            "max IR {} exceeded constraint {}",
            stats.max_ir,
            constraint
        );
    }

    #[test]
    fn distr_spreads_and_beats_fcfs_under_tight_constraint() {
        let reqs = small_workload(2000);
        let c = MilliVolts(28.0);
        let fcfs = sim(ReadPolicy::ir_aware_fcfs(c)).run(&reqs).unwrap();
        let distr = sim(ReadPolicy::ir_aware_distr(c)).run(&reqs).unwrap();
        assert!(
            distr.runtime_us <= fcfs.runtime_us * 1.02,
            "DistR {} vs FCFS {}",
            distr.runtime_us,
            fcfs.runtime_us
        );
    }

    #[test]
    fn impossible_constraint_reports_stall() {
        let reqs = small_workload(50);
        // Below the IR of any single-bank state: nothing can ever activate.
        let err = sim(ReadPolicy::ir_aware_fcfs(MilliVolts(1.0)))
            .run(&reqs)
            .unwrap_err();
        assert!(matches!(err, SimulateError::Stalled { completed: 0, .. }));
    }

    #[test]
    fn stall_snapshot_reports_tightest_state() {
        let reqs = small_workload(50);
        let err = sim(ReadPolicy::ir_aware_fcfs(MilliVolts(1.0)))
            .run(&reqs)
            .unwrap_err();
        let SimulateError::Stalled { snapshot, .. } = err else {
            panic!("expected Stalled, got {err:?}");
        };
        assert_eq!(snapshot.constraint_mv, Some(1.0));
        assert_eq!(snapshot.per_die_powered, vec![0; 4]);
        assert!(snapshot.queue_depth > 0, "queued work was blocked");
        let tightest = snapshot.tightest.expect("LUT offers a next activate");
        assert!(
            tightest.ir_mv > 1.0,
            "cheapest activate ({:.2} mV) must violate the 1 mV constraint",
            tightest.ir_mv
        );
        assert_eq!(tightest.state.iter().sum::<u8>(), 1, "one-activate state");
    }

    #[test]
    fn cycle_budget_exceeded_carries_partial_stats() {
        let reqs = small_workload(2000);
        // Measure the unconstrained run, then allow only half its cycles.
        let full = sim(ReadPolicy::standard()).run(&reqs).expect("completes");
        let mut config = SimConfig::paper_ddr3();
        config.max_cycles = full.cycles / 2;
        let err = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            config.clone(),
            ReadPolicy::standard(),
            synthetic_lut(4),
        )
        .run(&reqs)
        .expect_err("budget must fire");
        let SimulateError::CycleBudgetExceeded {
            cycle,
            completed,
            max_cycles,
            partial,
        } = err
        else {
            panic!("expected CycleBudgetExceeded, got {err:?}");
        };
        assert_eq!(max_cycles, config.max_cycles);
        assert!(cycle >= max_cycles);
        assert!(completed > 0 && completed < 2000, "completed {completed}");
        assert_eq!(partial.completed, completed);
        assert!(partial.activates > 0);
    }

    #[test]
    fn pre_cancelled_token_stops_the_run_immediately() {
        let reqs = small_workload(500);
        let token = pi3d_telemetry::CancelToken::new();
        token.cancel();
        let err = sim(ReadPolicy::standard())
            .with_cancel(token)
            .run(&reqs)
            .expect_err("cancel must fire");
        let SimulateError::Cancelled {
            completed, partial, ..
        } = err
        else {
            panic!("expected Cancelled, got {err:?}");
        };
        assert_eq!(completed, 0);
        assert_eq!(partial.completed, 0);
    }

    #[test]
    fn unset_budget_and_token_leave_stats_bit_identical() {
        // The robustness hooks must be observationally free when unused.
        let reqs = small_workload(800);
        let plain = sim(ReadPolicy::ir_aware_distr(MilliVolts(40.0)))
            .run(&reqs)
            .expect("completes");
        let hooked = sim(ReadPolicy::ir_aware_distr(MilliVolts(40.0)))
            .with_cancel(pi3d_telemetry::CancelToken::new())
            .run(&reqs)
            .expect("completes");
        assert_eq!(plain, hooked);
    }

    #[test]
    fn row_hit_rate_is_high_for_local_workload() {
        let reqs = small_workload(1000);
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        // The workload generator's 80% row-hit rate is a per-bank
        // property; the *served* hit rate is much lower because
        // interleaving and auto-close break up runs (the paper's heavy
        // workload behaves the same: its standard policy is
        // activate-throttled).
        assert!(
            (0.05..0.6).contains(&stats.row_hit_rate()),
            "row hit rate {}",
            stats.row_hit_rate()
        );
        assert!(stats.activates > 0 && stats.precharges > 0);
    }

    #[test]
    fn standard_policy_respects_faw() {
        // With tFAW 32 the controller may not issue more than 4 activates
        // in any 32-cycle window; over the whole run the activate count is
        // bounded by cycles / tRRD anyway, but the key observable is that
        // the run completes with sensible stats.
        let reqs = small_workload(300);
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        assert!(stats.activates as f64 / stats.cycles as f64 <= 4.0 / 32.0 + 0.01);
    }

    #[test]
    fn refresh_extension_slows_the_run_but_completes() {
        let reqs = small_workload(2000);
        let base = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        let refreshing = MemorySimulator::new(
            TimingParams::ddr3_1600_with_refresh(),
            SimConfig::paper_ddr3(),
            ReadPolicy::standard(),
            synthetic_lut(4),
        )
        .run(&reqs)
        .unwrap();
        assert_eq!(refreshing.completed, 2000);
        assert!(refreshing.refreshes > 0, "no refreshes happened");
        assert!(
            refreshing.runtime_us >= base.runtime_us,
            "refresh made the run faster: {} vs {}",
            refreshing.runtime_us,
            base.runtime_us
        );
        assert_eq!(base.refreshes, 0);
        // Roughly one refresh per die per tREFI window.
        let windows = refreshing.cycles / TimingParams::ddr3_1600_with_refresh().t_refi as u64;
        assert!(
            refreshing.refreshes >= windows.saturating_sub(1) * 4 / 2,
            "refreshes {} for {windows} windows",
            refreshing.refreshes
        );
    }

    #[test]
    fn queue_depth_is_bounded_by_capacity() {
        let reqs = small_workload(500);
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        assert!(stats.avg_queue_depth <= 32.0);
    }

    #[test]
    fn latency_exceeds_minimum_pipeline_depth() {
        let reqs = small_workload(200);
        let t = TimingParams::ddr3_1600();
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        assert!(stats.avg_latency_cycles >= (t.t_cl + t.data_cycles()) as f64);
    }
}
