use crate::bank::Bank;
use crate::lut::IrDropLut;
use crate::policy::{IrPolicy, ReadPolicy, SchedulingPolicy};
use crate::request::ReadRequest;
use crate::stats::SimStats;
use crate::timing::TimingParams;
use pi3d_layout::units::MilliVolts;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Structural configuration of the simulated memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// DRAM dies in the stack.
    pub dies: usize,
    /// Banks per die.
    pub banks_per_die: usize,
    /// Independent channels (each with its own command/data bus).
    pub channels: usize,
    /// Request-queue capacity (the paper uses 32).
    pub queue_capacity: usize,
    /// Maximum simultaneously powered banks per die (the paper's
    /// interleaving mode caps this at two to protect the charge pumps).
    pub max_powered_per_die: usize,
}

impl SimConfig {
    /// The paper's stacked-DDR3 system: 4 dies × 8 banks, one channel,
    /// a 32-entry queue, at most two powered banks per die.
    pub fn paper_ddr3() -> Self {
        SimConfig {
            dies: 4,
            banks_per_die: 8,
            channels: 1,
            queue_capacity: 32,
            max_powered_per_die: 2,
        }
    }
}

/// Error returned when a simulation cannot make progress.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimulateError {
    /// The controller stopped issuing commands (e.g. the IR constraint is
    /// below the drop of every single-bank state, so no activate is ever
    /// legal).
    Stalled {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Requests completed before the stall.
        completed: u64,
    },
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::Stalled { cycle, completed } => write!(
                f,
                "simulation stalled at cycle {cycle} with {completed} requests completed \
                 (IR-drop constraint likely allows no memory state)"
            ),
        }
    }
}

impl Error for SimulateError {}

/// Cycle-accurate 3D DRAM memory-controller simulator.
///
/// Models per-bank row state (activate / read / precharge with tRCD, tRAS,
/// tRP), per-channel command and data buses (tCL, tCCD, burst occupancy),
/// a bounded priority queue, the IR-drop lookup table, and the three read
/// policies of the paper's Section 5.2.
///
/// # Examples
///
/// ```
/// use pi3d_layout::units::MilliVolts;
/// use pi3d_memsim::{
///     IrDropLut, MemorySimulator, ReadPolicy, SimConfig, TimingParams, WorkloadSpec,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A flat LUT: every state is allowed.
/// let mut lut = IrDropLut::new(4);
/// # let states: Vec<Vec<u8>> = (0..81)
/// #     .map(|i| (0..4).map(|d| ((i / 3usize.pow(d)) % 3) as u8).collect())
/// #     .collect();
/// # for s in &states {
/// #     for act in [0.25, 0.5, 1.0] {
/// #         lut.insert(s, act, MilliVolts(10.0));
/// #     }
/// # }
/// let sim = MemorySimulator::new(
///     TimingParams::ddr3_1600(),
///     SimConfig::paper_ddr3(),
///     ReadPolicy::ir_aware_fcfs(MilliVolts(24.0)),
///     lut,
/// );
/// let mut workload = WorkloadSpec::paper_ddr3();
/// workload.count = 200;
/// let stats = sim.run(&workload.generate())?;
/// assert_eq!(stats.completed, 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemorySimulator {
    timing: TimingParams,
    config: SimConfig,
    policy: ReadPolicy,
    lut: IrDropLut,
}

struct ChannelState {
    /// Cycle of the last read command (tCCD / data-bus spacing).
    last_read_cmd: Option<u64>,
    /// Activate history inside the tFAW window (standard policy).
    acts: VecDeque<u64>,
    /// Cycle of the last activate (tRRD, standard policy).
    last_act: Option<u64>,
}

/// Sliding-window measurement of per-die I/O activity (bus utilization).
///
/// The IR-drop-aware policies gate *reads* on the activity the read would
/// produce: issuing a read to a die raises that die's measured utilization,
/// and the LUT is consulted at the measured level. This is how the paper's
/// controller turns the IR constraint into read-rate throttling — inserting
/// bubbles when the state's full-rate IR would violate the cap — which
/// yields the smooth runtime-vs-constraint curves of Figure 9.
struct ActivityWindow {
    window: u64,
    /// `(issue_cycle, die, data_cycles)` per recent read.
    events: VecDeque<(u64, usize, u32)>,
    /// Busy data-bus cycles per die within the window.
    busy: Vec<u64>,
}

impl ActivityWindow {
    fn new(dies: usize, window: u64) -> Self {
        ActivityWindow {
            window,
            events: VecDeque::new(),
            busy: vec![0; dies],
        }
    }

    fn prune(&mut self, cycle: u64) {
        while let Some(&(c, die, data)) = self.events.front() {
            if c + self.window <= cycle {
                self.busy[die] -= data as u64;
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    fn record(&mut self, cycle: u64, die: usize, data_cycles: u32) {
        self.events.push_back((cycle, die, data_cycles));
        self.busy[die] += data_cycles as u64;
    }

    /// Utilization of one die's I/O over the window.
    fn die_utilization(&self, die: usize) -> f64 {
        self.busy[die] as f64 / self.window as f64
    }

    /// The worst per-die utilization.
    fn max_utilization(&self) -> f64 {
        self.busy
            .iter()
            .map(|&b| b as f64 / self.window as f64)
            .fold(0.0, f64::max)
    }
}

impl MemorySimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the LUT's die count differs from the configuration's.
    pub fn new(
        timing: TimingParams,
        config: SimConfig,
        policy: ReadPolicy,
        lut: IrDropLut,
    ) -> Self {
        assert_eq!(lut.dies(), config.dies, "LUT die count mismatch");
        MemorySimulator {
            timing,
            config,
            policy,
            lut,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ReadPolicy {
        self.policy
    }

    /// The timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Runs the request stream to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::Stalled`] if no forward progress is
    /// possible (an over-tight IR constraint).
    pub fn run(&self, requests: &[ReadRequest]) -> Result<SimStats, SimulateError> {
        #[cfg(feature = "telemetry")]
        let _span = pi3d_telemetry::span::span("memsim_run");
        let t = &self.timing;
        let cfg = &self.config;
        let n = requests.len() as u64;

        let mut banks: Vec<Vec<Bank>> = vec![vec![Bank::new(); cfg.banks_per_die]; cfg.dies];
        let mut channels: Vec<ChannelState> = (0..cfg.channels)
            .map(|_| ChannelState {
                last_read_cmd: None,
                acts: VecDeque::new(),
                last_act: None,
            })
            .collect();
        let mut queue: Vec<ReadRequest> = Vec::with_capacity(cfg.queue_capacity);
        // Activity window: a few row cycles long, so throttling reacts on
        // the same timescale banks open and close.
        let mut activity = ActivityWindow::new(cfg.dies, 2 * t.t_faw.max(32) as u64);
        // Refresh bookkeeping (extension; disabled when t_refi == 0).
        let mut refresh_due: Vec<u64> = (0..cfg.dies)
            .map(|d| t.t_refi as u64 + (d as u64 * t.t_refi as u64) / cfg.dies.max(1) as u64)
            .collect();
        let mut refreshing_until: Vec<u64> = vec![0; cfg.dies];
        let mut refreshes: u64 = 0;
        let mut next_arrival = 0usize;
        let mut in_flight: Vec<(u64, ReadRequest)> = Vec::new();
        let mut act_for: HashMap<(usize, usize), u64> = HashMap::new();

        let mut cycle: u64 = 0;
        let mut completed: u64 = 0;
        let mut last_data_end: u64 = 0;
        let mut activates: u64 = 0;
        let mut precharges: u64 = 0;
        let mut row_hits: u64 = 0;
        let mut latency_sum: f64 = 0.0;
        let mut queue_depth_sum: f64 = 0.0;
        let mut stall_cycles: u64 = 0;
        let mut max_ir = MilliVolts(0.0);
        let mut last_progress_cycle: u64 = 0;

        // Generous stall horizon: the longest legal gap between command
        // issues is bounded by a few row cycles.
        let stall_horizon = 100 * (t.t_ras + t.t_rp + t.t_rcd + t.t_cl) as u64 + 1_000;

        while completed < n {
            activity.prune(cycle);
            // 1. Advance bank state machines.
            for die in banks.iter_mut() {
                for b in die.iter_mut() {
                    b.tick(cycle);
                }
            }

            // 2. Retire finished data transfers.
            let mut i = 0;
            while i < in_flight.len() {
                if in_flight[i].0 <= cycle {
                    let (done, req) = in_flight.swap_remove(i);
                    completed += 1;
                    latency_sum += (done - req.arrival) as f64;
                    last_data_end = last_data_end.max(done);
                    last_progress_cycle = cycle;
                } else {
                    i += 1;
                }
            }

            // 3. Accept arrivals into the bounded queue.
            while next_arrival < requests.len()
                && requests[next_arrival].arrival <= cycle
                && queue.len() < cfg.queue_capacity
            {
                queue.push(requests[next_arrival]);
                next_arrival += 1;
            }

            // 3b. Refresh (extension): when a die's refresh is due, stop
            // activating it; once its banks drain, run an all-bank refresh
            // for tRFC cycles (staggered across dies at construction).
            if t.t_refi > 0 {
                for die in 0..cfg.dies {
                    if cycle >= refresh_due[die]
                        && cycle >= refreshing_until[die]
                        && banks[die].iter().all(|b| b.can_activate())
                    {
                        refreshing_until[die] = cycle + t.t_rfc as u64;
                        refresh_due[die] = cycle + t.t_refi as u64;
                        refreshes += 1;
                        last_progress_cycle = cycle;
                    }
                }
            }

            // 4. IR-drop-motivated auto-close of banks nobody wants.
            for die in 0..cfg.dies {
                for bk in 0..cfg.banks_per_die {
                    let bank = &banks[die][bk];
                    if let Some(open) = bank.open_row() {
                        let wanted = queue
                            .iter()
                            .any(|r| r.die == die && r.bank == bk && r.row == open);
                        // A row nobody wants closes after `idle_close`; a
                        // wanted row still closes after a long starvation
                        // period so a narrow reorder window cannot pin the
                        // die's bank budget forever.
                        let idle = bank.idle_for(cycle);
                        let expired = (!wanted && idle >= t.idle_close as u64)
                            || idle >= (8 * t.idle_close).max(t.t_ras) as u64;
                        if expired && bank.can_precharge(cycle) {
                            banks[die][bk].precharge(cycle, t.t_rp);
                            precharges += 1;
                        }
                    }
                }
            }

            // 5. Issue at most one command per channel.
            let mut issued_this_cycle = false;
            for ch in 0..cfg.channels {
                let mut order: Vec<usize> = (0..queue.len())
                    .filter(|&i| queue[i].channel == ch)
                    .collect();
                match self.policy.scheduling {
                    SchedulingPolicy::Fcfs => order.sort_by_key(|&i| queue[i].id),
                    SchedulingPolicy::DistributedRead => order.sort_by_key(|&i| {
                        let die = queue[i].die;
                        let powered = banks[die].iter().filter(|b| b.is_powered()).count();
                        (powered, queue[i].id)
                    }),
                }
                order.truncate(self.policy.reorder_window());

                let mut issued = false;
                for &qi in &order {
                    let req = queue[qi];
                    if cycle < refreshing_until[req.die] {
                        continue; // die busy refreshing
                    }
                    let refresh_pending = t.t_refi > 0 && cycle >= refresh_due[req.die];
                    let bank = &banks[req.die][req.bank];
                    if bank.can_read(req.row) {
                        // Data-bus spacing: tCCD and burst occupancy.
                        let spacing = t.t_ccd.max(t.data_cycles()) as u64;
                        let ok = channels[ch]
                            .last_read_cmd
                            .is_none_or(|last| cycle >= last + spacing)
                            && self.read_allowed(&banks, &activity, req.die);
                        if ok {
                            banks[req.die][req.bank].read(cycle, req.row);
                            activity.record(cycle, req.die, t.data_cycles());
                            channels[ch].last_read_cmd = Some(cycle);
                            let done = cycle + t.t_cl as u64 + t.data_cycles() as u64;
                            if act_for.get(&(req.die, req.bank)) != Some(&req.id) {
                                row_hits += 1;
                            }
                            in_flight.push((done, req));
                            queue.swap_remove(qi);
                            issued = true;
                            last_progress_cycle = cycle;
                        }
                    } else if bank.open_row().is_some() && bank.open_row() != Some(req.row) {
                        if banks[req.die][req.bank].can_precharge(cycle) {
                            banks[req.die][req.bank].precharge(cycle, t.t_rp);
                            precharges += 1;
                            issued = true;
                            last_progress_cycle = cycle;
                        }
                    } else if bank.can_activate()
                        && !refresh_pending
                        && self.activate_allowed(&banks, &channels[ch], &activity, req.die, cycle)
                    {
                        banks[req.die][req.bank].activate(cycle, req.row, t.t_rcd, t.t_ras);
                        act_for.insert((req.die, req.bank), req.id);
                        channels[ch].last_act = Some(cycle);
                        channels[ch].acts.push_back(cycle);
                        activates += 1;
                        issued = true;
                        last_progress_cycle = cycle;
                    }
                    if issued {
                        break;
                    }
                }
                issued_this_cycle |= issued;
            }
            if !queue.is_empty() && !issued_this_cycle {
                stall_cycles += 1;
            }

            // 6. Track the IR drop of the state we are in, at the I/O
            // activity actually measured over the sliding window.
            let counts: Vec<u8> = banks
                .iter()
                .enumerate()
                .map(|(die, bs)| {
                    if cycle < refreshing_until[die] {
                        // All-bank refresh powers every bank; the LUT is
                        // capped at the interleave limit.
                        cfg.max_powered_per_die as u8
                    } else {
                        bs.iter().filter(|b| b.is_powered()).count() as u8
                    }
                })
                .collect();
            if counts.iter().any(|&c| c > 0) {
                if let Some(ir) = self
                    .lut
                    .lookup(&counts, activity.max_utilization().min(1.0))
                {
                    max_ir = max_ir.max(ir);
                }
            }

            queue_depth_sum += queue.len() as f64;
            cycle += 1;

            if cycle - last_progress_cycle > stall_horizon {
                return Err(SimulateError::Stalled { cycle, completed });
            }
        }

        let cycles = last_data_end.max(1);
        let stats = SimStats {
            refreshes,
            cycles,
            runtime_us: t.cycles_to_us(cycles),
            completed,
            bandwidth_reads_per_clk: completed as f64 / cycles as f64,
            max_ir,
            activates,
            precharges,
            row_hits,
            avg_latency_cycles: if completed > 0 {
                latency_sum / completed as f64
            } else {
                0.0
            },
            avg_queue_depth: queue_depth_sum / cycle as f64,
            stall_cycles,
        };
        #[cfg(feature = "telemetry")]
        {
            use pi3d_telemetry::{metrics, report};
            metrics::counter("memsim.runs").incr(1);
            metrics::counter("memsim.cycles").incr(stats.cycles);
            metrics::counter("memsim.completed").incr(stats.completed);
            metrics::counter("memsim.stall_cycles").incr(stats.stall_cycles);
            report::record_policy_stats(report::PolicyStatsRecord {
                label: format!("{}x{} requests", cfg.dies, n),
                policy: self.policy.name().to_string(),
                cycles: stats.cycles,
                completed: stats.completed,
                row_hit_rate: stats.row_hit_rate(),
                avg_queue_depth: stats.avg_queue_depth,
                stall_cycles: stats.stall_cycles,
                max_ir_mv: stats.max_ir.value(),
            });
            pi3d_telemetry::debug!(
                "memsim {} run: {} cycles, {} completed, {} stalls, max IR {:.1} mV",
                self.policy.name(),
                stats.cycles,
                stats.completed,
                stats.stall_cycles,
                stats.max_ir.value()
            );
        }
        Ok(stats)
    }

    /// Whether issuing a read to `die` keeps the IR-drop constraint met at
    /// the utilization the read produces (IR-aware policies only; the
    /// standard policy never throttles reads).
    fn read_allowed(&self, banks: &[Vec<Bank>], activity: &ActivityWindow, die: usize) -> bool {
        let IrPolicy::IrAware { constraint } = self.policy.ir else {
            return true;
        };
        let counts: Vec<u8> = banks
            .iter()
            .map(|d| d.iter().filter(|b| b.is_powered()).count() as u8)
            .collect();
        let prospective = (activity.die_utilization(die)
            + self.timing.data_cycles() as f64 / activity.window as f64)
            .max(activity.max_utilization())
            .min(1.0);
        match self.lut.lookup(&counts, prospective) {
            Some(ir) => ir.value() <= constraint.value() + 1e-9,
            None => false,
        }
    }

    /// Whether an activate on `die` is allowed this cycle under the policy.
    fn activate_allowed(
        &self,
        banks: &[Vec<Bank>],
        channel: &ChannelState,
        activity: &ActivityWindow,
        die: usize,
        cycle: u64,
    ) -> bool {
        // Charge-pump limit: at most N powered banks per die.
        let powered = banks[die].iter().filter(|b| b.is_powered()).count();
        if powered >= self.config.max_powered_per_die {
            return false;
        }
        match self.policy.ir {
            IrPolicy::Standard => {
                let t = &self.timing;
                if let Some(last) = channel.last_act {
                    if cycle < last + t.t_rrd as u64 {
                        return false;
                    }
                }
                let window_start = cycle.saturating_sub(t.t_faw as u64);
                let recent = channel.acts.iter().filter(|&&a| a > window_start).count();
                recent < 4
            }
            IrPolicy::IrAware { constraint } => {
                let mut counts: Vec<u8> = banks
                    .iter()
                    .map(|d| d.iter().filter(|b| b.is_powered()).count() as u8)
                    .collect();
                counts[die] += 1;
                // The prospective state must meet the constraint at the
                // currently measured I/O activity (reads are gated
                // separately, so the activity cannot silently grow past
                // the cap afterwards).
                match self
                    .lut
                    .lookup(&counts, activity.max_utilization().min(1.0))
                {
                    Some(ir) => ir.value() <= constraint.value() + 1e-9,
                    None => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::WorkloadSpec;

    /// A synthetic LUT shaped like the real platform's: IR grows with the
    /// per-die bank count and shrinks when activity spreads across dies.
    fn synthetic_lut(dies: usize) -> IrDropLut {
        let mut lut = IrDropLut::new(dies);
        let states = all_states(dies, 2);
        for s in &states {
            for &act in &[0.25f64, 0.5, 1.0] {
                let worst = *s.iter().max().expect("nonempty") as f64;
                let total: u8 = s.iter().sum();
                // Imbalanced, high-activity states hurt the most.
                let ir = 6.0 + 9.0 * worst * (0.4 + 0.6 * act) + 1.2 * total as f64;
                lut.insert(s, act, MilliVolts(ir));
            }
        }
        lut
    }

    fn all_states(dies: usize, max: u8) -> Vec<Vec<u8>> {
        let mut states = vec![vec![]];
        for _ in 0..dies {
            states = states
                .into_iter()
                .flat_map(|s| {
                    (0..=max).map(move |c| {
                        let mut s = s.clone();
                        s.push(c);
                        s
                    })
                })
                .collect();
        }
        states
    }

    fn small_workload(count: usize) -> Vec<crate::ReadRequest> {
        let mut spec = WorkloadSpec::paper_ddr3();
        spec.count = count;
        spec.generate()
    }

    fn sim(policy: ReadPolicy) -> MemorySimulator {
        MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            policy,
            synthetic_lut(4),
        )
    }

    #[test]
    fn all_requests_complete_under_every_policy() {
        let reqs = small_workload(500);
        for policy in [
            ReadPolicy::standard(),
            ReadPolicy::ir_aware_fcfs(MilliVolts(40.0)),
            ReadPolicy::ir_aware_distr(MilliVolts(40.0)),
        ] {
            let stats = sim(policy).run(&reqs).expect("completes");
            assert_eq!(stats.completed, 500, "{}", policy.name());
            assert!(stats.bandwidth_reads_per_clk > 0.0);
            assert!(stats.runtime_us > 0.0);
        }
    }

    #[test]
    fn ir_aware_never_exceeds_its_constraint() {
        let reqs = small_workload(800);
        let constraint = MilliVolts(26.0);
        let stats = sim(ReadPolicy::ir_aware_fcfs(constraint))
            .run(&reqs)
            .unwrap();
        assert!(
            stats.max_ir.value() <= constraint.value() + 1e-9,
            "max IR {} exceeded constraint {}",
            stats.max_ir,
            constraint
        );
    }

    #[test]
    fn distr_spreads_and_beats_fcfs_under_tight_constraint() {
        let reqs = small_workload(2000);
        let c = MilliVolts(28.0);
        let fcfs = sim(ReadPolicy::ir_aware_fcfs(c)).run(&reqs).unwrap();
        let distr = sim(ReadPolicy::ir_aware_distr(c)).run(&reqs).unwrap();
        assert!(
            distr.runtime_us <= fcfs.runtime_us * 1.02,
            "DistR {} vs FCFS {}",
            distr.runtime_us,
            fcfs.runtime_us
        );
    }

    #[test]
    fn impossible_constraint_reports_stall() {
        let reqs = small_workload(50);
        // Below the IR of any single-bank state: nothing can ever activate.
        let err = sim(ReadPolicy::ir_aware_fcfs(MilliVolts(1.0)))
            .run(&reqs)
            .unwrap_err();
        assert!(matches!(err, SimulateError::Stalled { completed: 0, .. }));
    }

    #[test]
    fn row_hit_rate_is_high_for_local_workload() {
        let reqs = small_workload(1000);
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        // The workload generator's 80% row-hit rate is a per-bank
        // property; the *served* hit rate is much lower because
        // interleaving and auto-close break up runs (the paper's heavy
        // workload behaves the same: its standard policy is
        // activate-throttled).
        assert!(
            (0.05..0.6).contains(&stats.row_hit_rate()),
            "row hit rate {}",
            stats.row_hit_rate()
        );
        assert!(stats.activates > 0 && stats.precharges > 0);
    }

    #[test]
    fn standard_policy_respects_faw() {
        // With tFAW 32 the controller may not issue more than 4 activates
        // in any 32-cycle window; over the whole run the activate count is
        // bounded by cycles / tRRD anyway, but the key observable is that
        // the run completes with sensible stats.
        let reqs = small_workload(300);
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        assert!(stats.activates as f64 / stats.cycles as f64 <= 4.0 / 32.0 + 0.01);
    }

    #[test]
    fn refresh_extension_slows_the_run_but_completes() {
        let reqs = small_workload(2000);
        let base = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        let refreshing = MemorySimulator::new(
            TimingParams::ddr3_1600_with_refresh(),
            SimConfig::paper_ddr3(),
            ReadPolicy::standard(),
            synthetic_lut(4),
        )
        .run(&reqs)
        .unwrap();
        assert_eq!(refreshing.completed, 2000);
        assert!(refreshing.refreshes > 0, "no refreshes happened");
        assert!(
            refreshing.runtime_us >= base.runtime_us,
            "refresh made the run faster: {} vs {}",
            refreshing.runtime_us,
            base.runtime_us
        );
        assert_eq!(base.refreshes, 0);
        // Roughly one refresh per die per tREFI window.
        let windows = refreshing.cycles / TimingParams::ddr3_1600_with_refresh().t_refi as u64;
        assert!(
            refreshing.refreshes >= windows.saturating_sub(1) * 4 / 2,
            "refreshes {} for {windows} windows",
            refreshing.refreshes
        );
    }

    #[test]
    fn queue_depth_is_bounded_by_capacity() {
        let reqs = small_workload(500);
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        assert!(stats.avg_queue_depth <= 32.0);
    }

    #[test]
    fn latency_exceeds_minimum_pipeline_depth() {
        let reqs = small_workload(200);
        let t = TimingParams::ddr3_1600();
        let stats = sim(ReadPolicy::standard()).run(&reqs).unwrap();
        assert!(stats.avg_latency_cycles >= (t.t_cl + t.data_cycles()) as f64);
    }
}
