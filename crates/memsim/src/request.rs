use pi3d_telemetry::rng::SplitMix64;
use std::error::Error;
use std::fmt;

/// One read request as seen by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRequest {
    /// Monotonic request id (arrival order).
    pub id: u64,
    /// Cycle at which the request reaches the controller.
    pub arrival: u64,
    /// Target channel.
    pub channel: usize,
    /// Target DRAM die (0 = bottom).
    pub die: usize,
    /// Target bank within the die.
    pub bank: usize,
    /// Target row.
    pub row: u32,
}

/// Configuration of the synthetic read-request stream (Section 2.3: 10,000
/// reads with temporal and spatial locality at an 80% row-hit rate, one
/// arrival every five DRAM cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of read requests to generate.
    pub count: usize,
    /// Cycles between consecutive arrivals.
    pub arrival_interval: u64,
    /// Probability that a request hits the row left open by the previous
    /// request to the same bank.
    pub row_hit_rate: f64,
    /// DRAM dies in the stack.
    pub dies: usize,
    /// Banks per die.
    pub banks_per_die: usize,
    /// Independent channels.
    pub channels: usize,
    /// Rows per bank (address-space size for the generator).
    pub rows: u32,
    /// RNG seed (the generator is fully deterministic given the spec).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's stacked-DDR3 heavy workload: 10,000 reads, one every
    /// five cycles, 80% row hit rate, one channel over 4 dies × 8 banks.
    pub fn paper_ddr3() -> Self {
        WorkloadSpec {
            count: 10_000,
            arrival_interval: 5,
            row_hit_rate: 0.80,
            dies: 4,
            banks_per_die: 8,
            channels: 1,
            rows: 4096,
            seed: 0x0003_dd2a_2015,
        }
    }

    /// Generates the deterministic request stream.
    ///
    /// Spatial locality: the target bank performs a short random walk
    /// (most requests stay on the same die). Temporal locality: with
    /// probability `row_hit_rate` a request reuses the last row opened in
    /// its bank.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `row_hit_rate` is outside
    /// `[0, 1]`.
    pub fn generate(&self) -> Vec<ReadRequest> {
        assert!(self.count > 0 && self.dies > 0 && self.banks_per_die > 0);
        assert!(self.channels > 0 && self.rows > 0);
        assert!(
            (0.0..=1.0).contains(&self.row_hit_rate),
            "row_hit_rate must be in [0, 1]"
        );
        let mut rng = SplitMix64::new(self.seed);
        let mut last_row = vec![vec![0u32; self.banks_per_die]; self.dies];
        let mut requests = Vec::with_capacity(self.count);
        let mut die = 0usize;
        let mut bank = 0usize;
        for id in 0..self.count as u64 {
            // Spatial locality: a heavy multi-client workload hops dies and
            // banks frequently (the paper's standard policy is
            // activate-throttled, implying most reads reopen a row).
            // Die-level temporal locality: bursts of requests target the
            // same die (this is what distributed-read scheduling exploits),
            // while banks within the die spread widely, so most reads
            // reopen a row.
            if rng.next_f64() > 0.85 {
                die = rng.next_below(self.dies as u64) as usize;
            }
            if rng.next_f64() < 0.90 {
                bank = rng.next_below(self.banks_per_die as u64) as usize;
            }
            let row = if rng.next_f64() < self.row_hit_rate {
                last_row[die][bank]
            } else {
                rng.next_below(u64::from(self.rows)) as u32
            };
            last_row[die][bank] = row;
            requests.push(ReadRequest {
                id,
                arrival: id * self.arrival_interval,
                channel: (die * self.banks_per_die + bank) % self.channels,
                die,
                bank,
                row,
            });
        }
        requests
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_in_arrival_order() {
        let reqs = WorkloadSpec::paper_ddr3().generate();
        assert_eq!(reqs.len(), 10_000);
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert_eq!(reqs[0].arrival, 0);
        assert_eq!(reqs.last().unwrap().arrival, 9_999 * 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadSpec::paper_ddr3().generate();
        let b = WorkloadSpec::paper_ddr3().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = WorkloadSpec::paper_ddr3();
        spec.seed = 7;
        assert_ne!(spec.generate(), WorkloadSpec::paper_ddr3().generate());
    }

    #[test]
    fn addresses_are_in_range() {
        let spec = WorkloadSpec::paper_ddr3();
        for r in spec.generate() {
            assert!(r.die < spec.dies);
            assert!(r.bank < spec.banks_per_die);
            assert!(r.row < spec.rows);
            assert!(r.channel < spec.channels);
        }
    }

    #[test]
    fn row_hit_rate_is_roughly_respected() {
        // Measure back-to-back same-row accesses per bank.
        let spec = WorkloadSpec::paper_ddr3();
        let reqs = spec.generate();
        let mut last: Vec<Vec<Option<u32>>> = vec![vec![None; spec.banks_per_die]; spec.dies];
        let mut hits = 0usize;
        let mut total = 0usize;
        for r in &reqs {
            if let Some(prev) = last[r.die][r.bank] {
                total += 1;
                if prev == r.row {
                    hits += 1;
                }
            }
            last[r.die][r.bank] = Some(r.row);
        }
        let rate = hits as f64 / total as f64;
        assert!((0.70..0.92).contains(&rate), "measured row-hit rate {rate}");
    }

    #[test]
    fn all_dies_receive_traffic() {
        let reqs = WorkloadSpec::paper_ddr3().generate();
        for die in 0..4 {
            assert!(reqs.iter().any(|r| r.die == die), "die {die} starved");
        }
    }
}

/// Error returned when parsing a request-trace file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// Parses a read-request trace.
///
/// One request per line: `arrival_cycle die bank row [channel]` (channel
/// defaults to 0); `#` starts a comment. Requests must be sorted by
/// arrival cycle.
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first malformed or
/// out-of-order line.
///
/// # Examples
///
/// ```
/// use pi3d_memsim::parse_trace;
///
/// let trace = "# arrival die bank row\n0 3 1 42\n5 3 1 42\n10 0 7 9 0\n";
/// let requests = parse_trace(trace)?;
/// assert_eq!(requests.len(), 3);
/// assert_eq!(requests[2].bank, 7);
/// # Ok::<(), pi3d_memsim::ParseTraceError>(())
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<ReadRequest>, ParseTraceError> {
    let mut requests = Vec::new();
    let mut last_arrival = 0u64;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseTraceError {
            line: line_no,
            message,
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if !(4..=5).contains(&fields.len()) {
            return Err(err(format!(
                "expected `arrival die bank row [channel]`, got {} fields",
                fields.len()
            )));
        }
        let arrival: u64 = fields[0]
            .parse()
            .map_err(|_| err(format!("bad arrival {:?}", fields[0])))?;
        let die: usize = fields[1]
            .parse()
            .map_err(|_| err(format!("bad die {:?}", fields[1])))?;
        let bank: usize = fields[2]
            .parse()
            .map_err(|_| err(format!("bad bank {:?}", fields[2])))?;
        let row: u32 = fields[3]
            .parse()
            .map_err(|_| err(format!("bad row {:?}", fields[3])))?;
        let channel: usize = match fields.get(4) {
            Some(c) => c.parse().map_err(|_| err(format!("bad channel {c:?}")))?,
            None => 0,
        };
        if arrival < last_arrival {
            return Err(err(format!(
                "arrival {arrival} is before the previous request ({last_arrival})"
            )));
        }
        last_arrival = arrival;
        requests.push(ReadRequest {
            id: requests.len() as u64,
            arrival,
            channel,
            die,
            bank,
            row,
        });
    }
    Ok(requests)
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn parses_comments_defaults_and_order() {
        let reqs = parse_trace("# header\n0 1 2 3\n\n7 0 0 0 1 # inline\n").unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(
            reqs[0],
            ReadRequest {
                id: 0,
                arrival: 0,
                channel: 0,
                die: 1,
                bank: 2,
                row: 3
            }
        );
        assert_eq!(reqs[1].channel, 1);
        assert_eq!(reqs[1].arrival, 7);
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let e = parse_trace("0 1 2 3\nnot numbers\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_trace("5 0 0 0\n3 0 0 0\n").unwrap_err();
        assert!(e.to_string().contains("before the previous"));
        let e = parse_trace("0 1 2\n").unwrap_err();
        assert!(e.to_string().contains("fields"));
    }

    #[test]
    fn parsed_trace_runs_in_the_simulator() {
        use crate::{IrDropLut, MemorySimulator, ReadPolicy, SimConfig, TimingParams};
        use pi3d_layout::units::MilliVolts;

        let mut text = String::from("# generated\n");
        for i in 0..50u64 {
            text += &format!("{} {} {} {}\n", i * 6, i % 4, i % 8, i % 16);
        }
        let requests = parse_trace(&text).unwrap();
        let mut lut = IrDropLut::new(4);
        for a in 0..3u8 {
            for b in 0..3u8 {
                for c in 0..3u8 {
                    for d in 0..3u8 {
                        for act in [0.25, 0.5, 1.0] {
                            lut.insert(&[a, b, c, d], act, MilliVolts(10.0));
                        }
                    }
                }
            }
        }
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            ReadPolicy::standard(),
            lut,
        );
        let stats = sim.run(&requests).unwrap();
        assert_eq!(stats.completed, 50);
    }
}
