use pi3d_layout::units::MilliVolts;

/// Aggregate results of one memory-controller simulation.
///
/// The three headline metrics match the paper's Table 6: runtime to drain
/// the request stream (µs), average bandwidth (reads per clock), and the
/// maximum IR drop ever entered (from the lookup table).
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated (last data beat).
    pub cycles: u64,
    /// Wall-clock runtime of the workload in microseconds.
    pub runtime_us: f64,
    /// Completed read requests.
    pub completed: u64,
    /// Average bandwidth in reads per clock cycle.
    pub bandwidth_reads_per_clk: f64,
    /// Maximum IR drop of any memory state entered during the run.
    pub max_ir: MilliVolts,
    /// All-bank refreshes performed (0 when refresh is disabled).
    pub refreshes: u64,
    /// Activate commands issued.
    pub activates: u64,
    /// Precharge commands issued.
    pub precharges: u64,
    /// Reads served from an already-open row.
    pub row_hits: u64,
    /// Mean request latency (arrival to last data beat), cycles.
    pub avg_latency_cycles: f64,
    /// Mean occupancy of the request queue.
    pub avg_queue_depth: f64,
    /// Cycles where the queue held requests but no channel issued a
    /// command (IR throttling, timing constraints, or refresh).
    pub stall_cycles: u64,
}

impl SimStats {
    /// Measured row-hit fraction.
    pub fn row_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_rate_handles_empty_run() {
        let s = SimStats {
            cycles: 0,
            runtime_us: 0.0,
            completed: 0,
            bandwidth_reads_per_clk: 0.0,
            max_ir: MilliVolts(0.0),
            refreshes: 0,
            activates: 0,
            precharges: 0,
            row_hits: 0,
            avg_latency_cycles: 0.0,
            avg_queue_depth: 0.0,
            stall_cycles: 0,
        };
        assert_eq!(s.row_hit_rate(), 0.0);
    }
}
