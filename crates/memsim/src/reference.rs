//! The original per-cycle stepper, kept verbatim as the correctness
//! oracle for the event-driven loop in [`MemorySimulator::run`].
//!
//! This module must stay behaviorally frozen: the equivalence test
//! (`tests/equivalence.rs`) pins `run()` to produce [`SimStats`]
//! bit-identical to [`MemorySimulator::run_reference`] across policies,
//! seeds, timings, and constraint levels. Any scheduling change must land
//! in *both* loops, deliberately.

use crate::bank::Bank;
use crate::controller::{ActivityWindow, ChannelState, MemorySimulator, SimulateError};
use crate::policy::{IrPolicy, SchedulingPolicy};
use crate::request::ReadRequest;
use crate::stats::SimStats;
use pi3d_layout::units::MilliVolts;
use std::collections::{HashMap, VecDeque};

impl MemorySimulator {
    /// Runs the request stream through the plain per-cycle stepper.
    ///
    /// Semantics are identical to [`MemorySimulator::run`] — that is the
    /// point: this is the straightforward one-cycle-at-a-time formulation
    /// the event-driven loop is validated against. It is kept `pub` so the
    /// equivalence test and the `memsim_run` benchmark can exercise it;
    /// production callers should use `run()`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError::Stalled`] if no forward progress is
    /// possible (an over-tight IR constraint).
    pub fn run_reference(&self, requests: &[ReadRequest]) -> Result<SimStats, SimulateError> {
        let t = self.timing();
        let cfg = &self.config;
        let n = requests.len() as u64;

        let mut banks: Vec<Vec<Bank>> = vec![vec![Bank::new(); cfg.banks_per_die]; cfg.dies];
        let mut channels: Vec<ChannelState> = (0..cfg.channels)
            .map(|_| ChannelState {
                last_read_cmd: None,
                acts: VecDeque::new(),
                last_act: None,
            })
            .collect();
        let mut queue: Vec<ReadRequest> = Vec::with_capacity(cfg.queue_capacity);
        // Activity window: a few row cycles long, so throttling reacts on
        // the same timescale banks open and close.
        let mut activity = ActivityWindow::new(cfg.dies, 2 * t.t_faw.max(32) as u64);
        // Refresh bookkeeping (extension; disabled when t_refi == 0).
        let mut refresh_due: Vec<u64> = (0..cfg.dies)
            .map(|d| t.t_refi as u64 + (d as u64 * t.t_refi as u64) / cfg.dies.max(1) as u64)
            .collect();
        let mut refreshing_until: Vec<u64> = vec![0; cfg.dies];
        let mut refreshes: u64 = 0;
        let mut next_arrival = 0usize;
        let mut in_flight: Vec<(u64, ReadRequest)> = Vec::new();
        let mut act_for: HashMap<(usize, usize), u64> = HashMap::new();

        let mut cycle: u64 = 0;
        let mut completed: u64 = 0;
        let mut last_data_end: u64 = 0;
        let mut activates: u64 = 0;
        let mut precharges: u64 = 0;
        let mut row_hits: u64 = 0;
        let mut latency_sum: f64 = 0.0;
        let mut queue_depth_sum: f64 = 0.0;
        let mut stall_cycles: u64 = 0;
        let mut max_ir = MilliVolts(0.0);
        let mut last_progress_cycle: u64 = 0;

        // Generous stall horizon: the longest legal gap between command
        // issues is bounded by a few row cycles.
        let stall_horizon = t.stall_horizon();

        while completed < n {
            activity.prune(cycle);
            // 1. Advance bank state machines.
            for die in banks.iter_mut() {
                for b in die.iter_mut() {
                    b.tick(cycle);
                }
            }

            // 2. Retire finished data transfers.
            let mut i = 0;
            while i < in_flight.len() {
                if in_flight[i].0 <= cycle {
                    let (done, req) = in_flight.swap_remove(i);
                    completed += 1;
                    latency_sum += (done - req.arrival) as f64;
                    last_data_end = last_data_end.max(done);
                    last_progress_cycle = cycle;
                } else {
                    i += 1;
                }
            }

            // 3. Accept arrivals into the bounded queue.
            while next_arrival < requests.len()
                && requests[next_arrival].arrival <= cycle
                && queue.len() < cfg.queue_capacity
            {
                queue.push(requests[next_arrival]);
                next_arrival += 1;
            }

            // 3b. Refresh (extension): when a die's refresh is due, stop
            // activating it; once its banks drain, run an all-bank refresh
            // for tRFC cycles (staggered across dies at construction).
            if t.t_refi > 0 {
                for die in 0..cfg.dies {
                    if cycle >= refresh_due[die]
                        && cycle >= refreshing_until[die]
                        && banks[die].iter().all(|b| b.can_activate())
                    {
                        refreshing_until[die] = cycle + t.t_rfc as u64;
                        refresh_due[die] = cycle + t.t_refi as u64;
                        refreshes += 1;
                        last_progress_cycle = cycle;
                    }
                }
            }

            // 4. IR-drop-motivated auto-close of banks nobody wants.
            for die in 0..cfg.dies {
                for bk in 0..cfg.banks_per_die {
                    let bank = &banks[die][bk];
                    if let Some(open) = bank.open_row() {
                        let wanted = queue
                            .iter()
                            .any(|r| r.die == die && r.bank == bk && r.row == open);
                        // A row nobody wants closes after `idle_close`; a
                        // wanted row still closes after a long starvation
                        // period so a narrow reorder window cannot pin the
                        // die's bank budget forever.
                        let idle = bank.idle_for(cycle);
                        let expired = (!wanted && idle >= t.idle_close as u64)
                            || idle >= (8 * t.idle_close).max(t.t_ras) as u64;
                        if expired && bank.can_precharge(cycle) {
                            banks[die][bk].precharge(cycle, t.t_rp);
                            precharges += 1;
                        }
                    }
                }
            }

            // 5. Issue at most one command per channel.
            let mut issued_this_cycle = false;
            for ch in 0..cfg.channels {
                let mut order: Vec<usize> = (0..queue.len())
                    .filter(|&i| queue[i].channel == ch)
                    .collect();
                match self.policy.scheduling {
                    SchedulingPolicy::Fcfs => order.sort_by_key(|&i| queue[i].id),
                    SchedulingPolicy::DistributedRead => order.sort_by_key(|&i| {
                        let die = queue[i].die;
                        let powered = banks[die].iter().filter(|b| b.is_powered()).count();
                        (powered, queue[i].id)
                    }),
                }
                order.truncate(self.policy.reorder_window());

                let mut issued = false;
                for &qi in &order {
                    let req = queue[qi];
                    if cycle < refreshing_until[req.die] {
                        continue; // die busy refreshing
                    }
                    let refresh_pending = t.t_refi > 0 && cycle >= refresh_due[req.die];
                    let bank = &banks[req.die][req.bank];
                    if bank.can_read(req.row) {
                        // Data-bus spacing: tCCD and burst occupancy.
                        let spacing = t.t_ccd.max(t.data_cycles()) as u64;
                        let ok = channels[ch]
                            .last_read_cmd
                            .is_none_or(|last| cycle >= last + spacing)
                            && self.read_allowed(&banks, &activity, req.die);
                        if ok {
                            banks[req.die][req.bank].read(cycle, req.row);
                            activity.record(cycle, req.die, t.data_cycles());
                            channels[ch].last_read_cmd = Some(cycle);
                            let done = cycle + t.t_cl as u64 + t.data_cycles() as u64;
                            if act_for.get(&(req.die, req.bank)) != Some(&req.id) {
                                row_hits += 1;
                            }
                            in_flight.push((done, req));
                            queue.swap_remove(qi);
                            issued = true;
                            last_progress_cycle = cycle;
                        }
                    } else if bank.open_row().is_some() && bank.open_row() != Some(req.row) {
                        if banks[req.die][req.bank].can_precharge(cycle) {
                            banks[req.die][req.bank].precharge(cycle, t.t_rp);
                            precharges += 1;
                            issued = true;
                            last_progress_cycle = cycle;
                        }
                    } else if bank.can_activate()
                        && !refresh_pending
                        && self.activate_allowed(&banks, &channels[ch], &activity, req.die, cycle)
                    {
                        banks[req.die][req.bank].activate(cycle, req.row, t.t_rcd, t.t_ras);
                        act_for.insert((req.die, req.bank), req.id);
                        channels[ch].last_act = Some(cycle);
                        channels[ch].acts.push_back(cycle);
                        activates += 1;
                        issued = true;
                        last_progress_cycle = cycle;
                    }
                    if issued {
                        break;
                    }
                }
                issued_this_cycle |= issued;
            }
            if !queue.is_empty() && !issued_this_cycle {
                stall_cycles += 1;
            }

            // 6. Track the IR drop of the state we are in, at the I/O
            // activity actually measured over the sliding window.
            let counts: Vec<u8> = banks
                .iter()
                .enumerate()
                .map(|(die, bs)| {
                    if cycle < refreshing_until[die] {
                        // All-bank refresh powers every bank; the LUT is
                        // capped at the interleave limit.
                        cfg.max_powered_per_die as u8
                    } else {
                        bs.iter().filter(|b| b.is_powered()).count() as u8
                    }
                })
                .collect();
            if counts.iter().any(|&c| c > 0) {
                if let Some(ir) = self
                    .lut
                    .lookup(&counts, activity.max_utilization().min(1.0))
                {
                    max_ir = max_ir.max(ir);
                }
            }

            queue_depth_sum += queue.len() as f64;
            cycle += 1;

            if cycle - last_progress_cycle > stall_horizon {
                let io = activity.max_utilization().min(1.0);
                return Err(SimulateError::Stalled {
                    cycle,
                    completed,
                    snapshot: self.stall_snapshot(counts, io, queue.len()),
                });
            }
        }

        let cycles = last_data_end.max(1);
        Ok(SimStats {
            refreshes,
            cycles,
            runtime_us: t.cycles_to_us(cycles),
            completed,
            bandwidth_reads_per_clk: completed as f64 / cycles as f64,
            max_ir,
            activates,
            precharges,
            row_hits,
            avg_latency_cycles: if completed > 0 {
                latency_sum / completed as f64
            } else {
                0.0
            },
            avg_queue_depth: queue_depth_sum / cycle as f64,
            stall_cycles,
        })
    }

    /// Whether issuing a read to `die` keeps the IR-drop constraint met at
    /// the utilization the read produces (IR-aware policies only; the
    /// standard policy never throttles reads).
    fn read_allowed(&self, banks: &[Vec<Bank>], activity: &ActivityWindow, die: usize) -> bool {
        let IrPolicy::IrAware { constraint } = self.policy.ir else {
            return true;
        };
        let counts: Vec<u8> = banks
            .iter()
            .map(|d| d.iter().filter(|b| b.is_powered()).count() as u8)
            .collect();
        let prospective = (activity.die_utilization(die)
            + self.timing.data_cycles() as f64 / activity.window as f64)
            .max(activity.max_utilization())
            .min(1.0);
        match self.lut.lookup(&counts, prospective) {
            Some(ir) => ir.value() <= constraint.value() + 1e-9,
            None => false,
        }
    }

    /// Whether an activate on `die` is allowed this cycle under the policy.
    fn activate_allowed(
        &self,
        banks: &[Vec<Bank>],
        channel: &ChannelState,
        activity: &ActivityWindow,
        die: usize,
        cycle: u64,
    ) -> bool {
        // Charge-pump limit: at most N powered banks per die.
        let powered = banks[die].iter().filter(|b| b.is_powered()).count();
        if powered >= self.config.max_powered_per_die {
            return false;
        }
        match self.policy.ir {
            IrPolicy::Standard => {
                let t = &self.timing;
                if let Some(last) = channel.last_act {
                    if cycle < last + t.t_rrd as u64 {
                        return false;
                    }
                }
                let window_start = cycle.saturating_sub(t.t_faw as u64);
                let recent = channel.acts.iter().filter(|&&a| a > window_start).count();
                recent < 4
            }
            IrPolicy::IrAware { constraint } => {
                let mut counts: Vec<u8> = banks
                    .iter()
                    .map(|d| d.iter().filter(|b| b.is_powered()).count() as u8)
                    .collect();
                counts[die] += 1;
                // The prospective state must meet the constraint at the
                // currently measured I/O activity (reads are gated
                // separately, so the activity cannot silently grow past
                // the cap afterwards).
                match self
                    .lut
                    .lookup(&counts, activity.max_utilization().min(1.0))
                {
                    Some(ir) => ir.value() <= constraint.value() + 1e-9,
                    None => false,
                }
            }
        }
    }
}
