/// Lifecycle phase of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankPhase {
    /// No row open.
    Idle,
    /// Row activation in flight (tRCD not yet elapsed).
    Activating {
        /// Row being opened.
        row: u32,
        /// Cycle at which the row becomes readable.
        ready_at: u64,
    },
    /// A row is open and readable.
    Active {
        /// The open row.
        row: u32,
    },
    /// Precharge in flight (tRP not yet elapsed).
    Precharging {
        /// Cycle at which the bank returns to idle.
        idle_at: u64,
    },
}

/// Cycle-accurate state of one DRAM bank.
///
/// The bank tracks its phase, the earliest cycle a precharge may issue
/// (tRAS), and the cycle of its last read (for the IR-drop-motivated
/// auto-close of Section 2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    phase: BankPhase,
    /// Earliest cycle a precharge may be issued (tRAS from activate).
    ras_done: u64,
    /// Cycle of the most recent read command (or activate).
    last_use: u64,
}

impl Bank {
    /// A fresh idle bank.
    pub fn new() -> Self {
        Bank {
            phase: BankPhase::Idle,
            ras_done: 0,
            last_use: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> BankPhase {
        self.phase
    }

    /// Advances time: promotes finished activations/precharges.
    pub fn tick(&mut self, cycle: u64) {
        match self.phase {
            BankPhase::Activating { row, ready_at } if cycle >= ready_at => {
                self.phase = BankPhase::Active { row };
            }
            BankPhase::Precharging { idle_at } if cycle >= idle_at => {
                self.phase = BankPhase::Idle;
            }
            _ => {}
        }
    }

    /// Whether the bank contributes to the die's active-bank count for
    /// IR purposes (a row is open or opening).
    pub fn is_powered(&self) -> bool {
        matches!(
            self.phase,
            BankPhase::Activating { .. } | BankPhase::Active { .. }
        )
    }

    /// The open (or opening) row, if any.
    pub fn open_row(&self) -> Option<u32> {
        match self.phase {
            BankPhase::Activating { row, .. } | BankPhase::Active { row } => Some(row),
            _ => None,
        }
    }

    /// Whether a read of `row` can issue this cycle.
    pub fn can_read(&self, row: u32) -> bool {
        matches!(self.phase, BankPhase::Active { row: open } if open == row)
    }

    /// Whether an activate can issue this cycle (bank idle).
    pub fn can_activate(&self) -> bool {
        self.phase == BankPhase::Idle
    }

    /// Whether a precharge can issue this cycle (row open, tRAS elapsed).
    pub fn can_precharge(&self, cycle: u64) -> bool {
        matches!(self.phase, BankPhase::Active { .. }) && cycle >= self.ras_done
    }

    /// Issues an activate.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not idle.
    pub fn activate(&mut self, cycle: u64, row: u32, t_rcd: u32, t_ras: u32) {
        assert!(self.can_activate(), "activate on non-idle bank");
        self.phase = BankPhase::Activating {
            row,
            ready_at: cycle + t_rcd as u64,
        };
        self.ras_done = cycle + t_ras as u64;
        self.last_use = cycle;
    }

    /// Issues a read command (data timing is tracked by the channel).
    ///
    /// # Panics
    ///
    /// Panics if the open row does not match.
    pub fn read(&mut self, cycle: u64, row: u32) {
        assert!(self.can_read(row), "read on wrong row or unready bank");
        self.last_use = cycle;
    }

    /// Issues a precharge.
    ///
    /// # Panics
    ///
    /// Panics if the bank cannot precharge this cycle.
    pub fn precharge(&mut self, cycle: u64, t_rp: u32) {
        assert!(
            self.can_precharge(cycle),
            "precharge before tRAS or without open row"
        );
        self.phase = BankPhase::Precharging {
            idle_at: cycle + t_rp as u64,
        };
    }

    /// Lazy-tick variant of [`Bank::can_read`]: whether a read of `row`
    /// can issue at `cycle`, resolving a finished activation that has not
    /// been promoted by [`Bank::tick`] yet.
    ///
    /// The event-driven scheduler does not tick every bank every cycle;
    /// these `_at` predicates answer exactly what the ticked bank would,
    /// so a bank only needs a real [`Bank::tick`] right before a mutation
    /// (whose assertions consult the stored phase).
    pub fn can_read_at(&self, cycle: u64, row: u32) -> bool {
        match self.phase {
            BankPhase::Active { row: open } => open == row,
            BankPhase::Activating {
                row: open,
                ready_at,
            } => open == row && cycle >= ready_at,
            _ => false,
        }
    }

    /// Lazy-tick variant of [`Bank::can_activate`].
    pub fn can_activate_at(&self, cycle: u64) -> bool {
        match self.phase {
            BankPhase::Idle => true,
            BankPhase::Precharging { idle_at } => cycle >= idle_at,
            _ => false,
        }
    }

    /// Lazy-tick variant of [`Bank::can_precharge`].
    pub fn can_precharge_at(&self, cycle: u64) -> bool {
        let active = match self.phase {
            BankPhase::Active { .. } => true,
            BankPhase::Activating { ready_at, .. } => cycle >= ready_at,
            _ => false,
        };
        active && cycle >= self.ras_done
    }

    /// Cycles since the last read/activate (for auto-close).
    pub fn idle_for(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.last_use)
    }

    /// Earliest cycle a precharge may issue (tRAS from the last activate).
    ///
    /// Used by the event-driven scheduler to predict when an open bank
    /// becomes closeable without ticking every intermediate cycle.
    pub fn ras_ready_at(&self) -> u64 {
        self.ras_done
    }

    /// Cycle of the most recent read or activate command.
    pub fn last_use_at(&self) -> u64 {
        self.last_use
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn activate_read_precharge_lifecycle() {
        let mut b = Bank::new();
        assert!(b.can_activate());
        b.activate(100, 7, 11, 28);
        assert!(b.is_powered());
        assert!(!b.can_read(7), "tRCD not elapsed");

        b.tick(110);
        assert!(!b.can_read(7));
        b.tick(111);
        assert!(b.can_read(7));
        assert!(!b.can_read(8), "wrong row");

        b.read(112, 7);
        assert!(!b.can_precharge(120), "tRAS not elapsed");
        assert!(b.can_precharge(128));
        b.precharge(128, 11);
        assert!(!b.is_powered());
        b.tick(138);
        assert_eq!(b.phase(), BankPhase::Precharging { idle_at: 139 });
        b.tick(139);
        assert!(b.can_activate());
    }

    #[test]
    fn idle_for_tracks_last_use() {
        let mut b = Bank::new();
        b.activate(10, 1, 2, 5);
        b.tick(12);
        b.read(20, 1);
        assert_eq!(b.idle_for(28), 8);
    }

    #[test]
    fn open_row_reported_while_activating() {
        let mut b = Bank::new();
        b.activate(0, 42, 11, 28);
        assert_eq!(b.open_row(), Some(42));
    }

    #[test]
    #[should_panic(expected = "activate on non-idle bank")]
    fn double_activate_panics() {
        let mut b = Bank::new();
        b.activate(0, 1, 11, 28);
        b.activate(1, 2, 11, 28);
    }

    #[test]
    #[should_panic(expected = "precharge before tRAS")]
    fn early_precharge_panics() {
        let mut b = Bank::new();
        b.activate(0, 1, 11, 28);
        b.tick(11);
        b.precharge(12, 11);
    }
}
