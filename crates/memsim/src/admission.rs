//! Admission-check caching for the event-driven controller.
//!
//! The IR-drop-aware policies consult the [`IrDropLut`] on every
//! scheduling decision — up to one lookup per queued request per cycle.
//! Each raw lookup hashes a `Vec<u8>` state key and interpolates in
//! activity, which dominates the simulator's profile. This module
//! memoizes those lookups behind integer keys:
//!
//! * the memory state is packed into a `u64` (one nibble per die, bottom
//!   die first), maintained incrementally by the controller;
//! * the I/O activity is keyed by the *integer* busy-cycle counts of the
//!   sliding [`ActivityWindow`](crate::controller), not the derived
//!   `f64` utilization — two cycles with the same busy counts produce
//!   bit-identical utilizations, so caching on the integers is exact.
//!
//! The cached value is the LUT result itself (`Option<MilliVolts>`), so
//! a hit costs one hash of a few integers instead of a `Vec` hash plus
//! linear interpolation. Keyspace is tiny (states × busy levels), so the
//! maps stay small for arbitrarily long runs.

use crate::lut::IrDropLut;
use pi3d_layout::units::MilliVolts;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV/SplitMix-style hasher for small integer keys: the std SipHash is
/// noticeably slower on the (u64, u64) keys this cache uses, and the
/// keys are attacker-free simulator state.
#[derive(Debug, Default)]
pub(crate) struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = self.0 ^ v;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.0 = h;
    }
}

type Map<K> = HashMap<K, Option<MilliVolts>, BuildHasherDefault<KeyHasher>>;

/// Per-run memo of LUT admission lookups (see module docs).
#[derive(Debug)]
pub(crate) struct AdmissionCache {
    window: u64,
    data_cycles: u32,
    /// `(state_key, busy_max)` → LUT value at the window-max utilization.
    at_max: Map<(u64, u64)>,
    /// `(state_key, busy_die, busy_max)` → LUT value at the prospective
    /// utilization a read to the die would produce.
    read: Map<(u64, u64, u64)>,
    /// Scratch buffer for decoding a packed state on a miss.
    scratch: Vec<u8>,
    /// Lookups served from the memo.
    pub(crate) hits: u64,
    /// Lookups that fell through to the LUT.
    pub(crate) misses: u64,
}

impl AdmissionCache {
    pub(crate) fn new(dies: usize, window: u64, data_cycles: u32) -> Self {
        AdmissionCache {
            window,
            data_cycles,
            at_max: Map::default(),
            read: Map::default(),
            scratch: vec![0; dies],
            hits: 0,
            misses: 0,
        }
    }

    fn decode(scratch: &mut [u8], key: u64) {
        for (die, c) in scratch.iter_mut().enumerate() {
            *c = ((key >> (4 * die)) & 0xF) as u8;
        }
    }

    /// LUT value for the packed state at the window-max utilization
    /// (`busy_max / window`, clamped to 1) — the exact lookup the
    /// reference stepper performs for activate admission and per-cycle
    /// IR tracking.
    pub(crate) fn state_ir_at_max(
        &mut self,
        lut: &IrDropLut,
        state_key: u64,
        busy_max: u64,
    ) -> Option<MilliVolts> {
        if let Some(&v) = self.at_max.get(&(state_key, busy_max)) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        Self::decode(&mut self.scratch, state_key);
        let act = (busy_max as f64 / self.window as f64).min(1.0);
        let v = lut.lookup(&self.scratch, act);
        self.at_max.insert((state_key, busy_max), v);
        v
    }

    /// LUT value for the packed state at the prospective utilization a
    /// read to a die would produce: the die's utilization plus one burst,
    /// floored at the current window max, clamped to 1 — term for term
    /// the reference `read_allowed` computation.
    pub(crate) fn read_ir(
        &mut self,
        lut: &IrDropLut,
        state_key: u64,
        busy_die: u64,
        busy_max: u64,
    ) -> Option<MilliVolts> {
        if let Some(&v) = self.read.get(&(state_key, busy_die, busy_max)) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        Self::decode(&mut self.scratch, state_key);
        let w = self.window as f64;
        let prospective = (busy_die as f64 / w + f64::from(self.data_cycles) / w)
            .max(busy_max as f64 / w)
            .min(1.0);
        let v = lut.lookup(&self.scratch, prospective);
        self.read.insert((state_key, busy_die, busy_max), v);
        v
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn lut() -> IrDropLut {
        let mut l = IrDropLut::new(4);
        l.insert(&[0, 0, 0, 2], 0.25, MilliVolts(23.0));
        l.insert(&[0, 0, 0, 2], 1.0, MilliVolts(30.0));
        l.insert(&[1, 0, 0, 0], 0.25, MilliVolts(12.0));
        l
    }

    fn key(counts: &[u8]) -> u64 {
        counts
            .iter()
            .enumerate()
            .map(|(d, &c)| u64::from(c) << (4 * d))
            .sum()
    }

    #[test]
    fn cached_values_match_direct_lookups() {
        let lut = lut();
        let window = 64;
        let mut cache = AdmissionCache::new(4, window, 4);
        for busy in [0u64, 16, 32, 64, 80] {
            let direct = lut.lookup(&[0, 0, 0, 2], (busy as f64 / window as f64).min(1.0));
            assert_eq!(
                cache.state_ir_at_max(&lut, key(&[0, 0, 0, 2]), busy),
                direct,
                "busy {busy}"
            );
            // Second call must hit.
            assert_eq!(
                cache.state_ir_at_max(&lut, key(&[0, 0, 0, 2]), busy),
                direct
            );
        }
        assert_eq!(cache.misses, 5);
        assert_eq!(cache.hits, 5);
        // Unknown state is a (cached) miss returning None.
        assert_eq!(cache.state_ir_at_max(&lut, key(&[2, 2, 0, 0]), 10), None);
        assert_eq!(cache.state_ir_at_max(&lut, key(&[2, 2, 0, 0]), 10), None);
    }

    #[test]
    fn read_prospective_matches_reference_formula() {
        let lut = lut();
        let window = 64u64;
        let data = 4u32;
        let mut cache = AdmissionCache::new(4, window, data);
        for (busy_die, busy_max) in [(0u64, 0u64), (12, 20), (60, 60), (64, 64)] {
            let w = window as f64;
            let prospective = (busy_die as f64 / w + f64::from(data) / w)
                .max(busy_max as f64 / w)
                .min(1.0);
            let direct = lut.lookup(&[0, 0, 0, 2], prospective);
            assert_eq!(
                cache.read_ir(&lut, key(&[0, 0, 0, 2]), busy_die, busy_max),
                direct,
                "busy ({busy_die}, {busy_max})"
            );
        }
    }
}
