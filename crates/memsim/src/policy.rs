use pi3d_layout::units::MilliVolts;

/// How activates are throttled for power-integrity (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrPolicy {
    /// JEDEC standard: tRRD and tFAW limit activate rate, blind to the
    /// actual 3D IR drop.
    Standard,
    /// IR-drop-aware: an activate is allowed whenever the prospective
    /// memory state's tabulated max IR drop stays at or below the
    /// constraint; tRRD/tFAW are not applied.
    IrAware {
        /// The IR-drop constraint (the paper uses 24 mV).
        constraint: MilliVolts,
    },
}

/// How queued requests are prioritized (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// First-come-first-served: oldest request first.
    Fcfs,
    /// Distributed-read: requests targeting the die with the fewest active
    /// banks first (ties broken by age), maximizing die-level parallelism
    /// under the IR constraint.
    DistributedRead,
}

/// A complete read policy: IR throttling plus request scheduling.
///
/// # Examples
///
/// ```
/// use pi3d_layout::units::MilliVolts;
/// use pi3d_memsim::ReadPolicy;
///
/// let standard = ReadPolicy::standard();
/// let distr = ReadPolicy::ir_aware_distr(MilliVolts(24.0));
/// assert_ne!(standard, distr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPolicy {
    /// Activate throttling.
    pub ir: IrPolicy,
    /// Queue ordering.
    pub scheduling: SchedulingPolicy,
}

impl ReadPolicy {
    /// The JEDEC standard policy (tRRD/tFAW + FCFS) — the paper's baseline.
    pub fn standard() -> Self {
        ReadPolicy {
            ir: IrPolicy::Standard,
            scheduling: SchedulingPolicy::Fcfs,
        }
    }

    /// How many queued requests (in priority order) the controller may
    /// consider per channel per cycle. The paper's IR-drop-aware policies
    /// "check all read requests in the priority queue" (Section 5.2) —
    /// the full 32-entry window — while the standard baseline models a
    /// conventional controller with a small reorder window.
    pub fn reorder_window(&self) -> usize {
        match self.ir {
            IrPolicy::Standard => 4,
            IrPolicy::IrAware { .. } => usize::MAX,
        }
    }

    /// IR-drop-aware policy with FCFS scheduling.
    pub fn ir_aware_fcfs(constraint: MilliVolts) -> Self {
        ReadPolicy {
            ir: IrPolicy::IrAware { constraint },
            scheduling: SchedulingPolicy::Fcfs,
        }
    }

    /// IR-drop-aware policy with distributed-read scheduling.
    pub fn ir_aware_distr(constraint: MilliVolts) -> Self {
        ReadPolicy {
            ir: IrPolicy::IrAware { constraint },
            scheduling: SchedulingPolicy::DistributedRead,
        }
    }

    /// Short display name matching the paper's Table 6 headers.
    pub fn name(&self) -> &'static str {
        match (self.ir, self.scheduling) {
            (IrPolicy::Standard, SchedulingPolicy::Fcfs) => "Standard/FCFS",
            (IrPolicy::Standard, SchedulingPolicy::DistributedRead) => "Standard/DistR",
            (IrPolicy::IrAware { .. }, SchedulingPolicy::Fcfs) => "IR-aware/FCFS",
            (IrPolicy::IrAware { .. }, SchedulingPolicy::DistributedRead) => "IR-aware/DistR",
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_right_fields() {
        assert_eq!(ReadPolicy::standard().ir, IrPolicy::Standard);
        let p = ReadPolicy::ir_aware_distr(MilliVolts(24.0));
        assert_eq!(p.scheduling, SchedulingPolicy::DistributedRead);
        assert_eq!(
            p.ir,
            IrPolicy::IrAware {
                constraint: MilliVolts(24.0)
            }
        );
    }

    #[test]
    fn names_match_table6() {
        assert_eq!(ReadPolicy::standard().name(), "Standard/FCFS");
        assert_eq!(
            ReadPolicy::ir_aware_fcfs(MilliVolts(24.0)).name(),
            "IR-aware/FCFS"
        );
        assert_eq!(
            ReadPolicy::ir_aware_distr(MilliVolts(24.0)).name(),
            "IR-aware/DistR"
        );
    }
}
