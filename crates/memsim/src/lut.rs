use pi3d_layout::units::MilliVolts;
use std::collections::HashMap;

/// IR-drop lookup table: maximum IR drop per memory state and I/O activity.
///
/// This is the interface between the R-Mesh engine and the memory
/// controller (Section 5.2): the platform pre-computes the max IR drop of
/// every reachable memory state at several I/O-activity levels; the
/// controller consults the table before issuing an activate.
///
/// Keys are the per-die active-bank counts, bottom die first. Lookups
/// between tabulated activity levels interpolate linearly; activities
/// outside the tabulated range clamp to the nearest entry.
///
/// # Examples
///
/// ```
/// use pi3d_layout::units::MilliVolts;
/// use pi3d_memsim::IrDropLut;
///
/// let mut lut = IrDropLut::new(4);
/// lut.insert(&[0, 0, 0, 2], 1.0, MilliVolts(30.0));
/// lut.insert(&[0, 0, 0, 2], 0.5, MilliVolts(26.0));
/// let ir = lut.lookup(&[0, 0, 0, 2], 0.75).unwrap();
/// assert!((ir.value() - 28.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IrDropLut {
    dies: usize,
    // state key -> sorted (activity, max IR mV) samples
    entries: HashMap<Vec<u8>, Vec<(f64, f64)>>,
}

impl IrDropLut {
    /// Creates an empty table for a stack of `dies` DRAM dies.
    pub fn new(dies: usize) -> Self {
        IrDropLut {
            dies,
            entries: HashMap::new(),
        }
    }

    /// Number of dies the table indexes over.
    pub fn dies(&self) -> usize {
        self.dies
    }

    /// Number of distinct states tabulated.
    pub fn state_count(&self) -> usize {
        self.entries.len()
    }

    /// Inserts (or updates) one sample.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != dies()` or activity is outside `[0, 1]`.
    pub fn insert(&mut self, counts: &[u8], io_activity: f64, max_ir: MilliVolts) {
        assert_eq!(counts.len(), self.dies, "state length mismatch");
        assert!(
            (0.0..=1.0).contains(&io_activity),
            "activity must be in [0, 1]"
        );
        let samples = self.entries.entry(counts.to_vec()).or_default();
        match samples.binary_search_by(|(a, _)| a.partial_cmp(&io_activity).expect("finite")) {
            Ok(pos) => samples[pos].1 = max_ir.value(),
            Err(pos) => samples.insert(pos, (io_activity, max_ir.value())),
        }
    }

    /// Looks up the max IR drop for a state, interpolating in activity.
    /// Returns `None` for states never tabulated.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != dies()`.
    pub fn lookup(&self, counts: &[u8], io_activity: f64) -> Option<MilliVolts> {
        assert_eq!(counts.len(), self.dies, "state length mismatch");
        let samples = self.entries.get(counts)?;
        if samples.is_empty() {
            return None;
        }
        if io_activity <= samples[0].0 {
            return Some(MilliVolts(samples[0].1));
        }
        if io_activity >= samples[samples.len() - 1].0 {
            return Some(MilliVolts(samples[samples.len() - 1].1));
        }
        let hi = samples.partition_point(|(a, _)| *a < io_activity);
        let (a0, v0) = samples[hi - 1];
        let (a1, v1) = samples[hi];
        let t = (io_activity - a0) / (a1 - a0);
        Some(MilliVolts(v0 + t * (v1 - v0)))
    }

    /// The I/O activity implied by zero-bubble interleaving for a state.
    ///
    /// Two effects bound a die's bus share: the bus is split equally among
    /// active dies (Table 5), and a single bank can sustain at most half
    /// the bus — the paper's interleaving mode needs two banks per die for
    /// zero-bubble streaming. So the per-active-die activity is
    /// `min(1/active_dies, 0.5 × banks_per_active_die)`.
    pub fn implied_activity(counts: &[u8]) -> f64 {
        let active = counts.iter().filter(|&&c| c > 0).count();
        if active == 0 {
            return 0.0;
        }
        let total_banks: u32 = counts.iter().map(|&c| c as u32).sum();
        let bus_share = 1.0 / active as f64;
        let bank_duty = 0.5 * total_banks as f64 / active as f64;
        bus_share.min(bank_duty)
    }

    /// Convenience: looks up a state at its zero-bubble implied activity.
    pub fn lookup_implied(&self, counts: &[u8]) -> Option<MilliVolts> {
        self.lookup(counts, Self::implied_activity(counts))
    }

    /// Iterates over tabulated states.
    pub fn states(&self) -> impl Iterator<Item = &[u8]> {
        self.entries.keys().map(Vec::as_slice)
    }

    /// Serializes the table to a plain-text format (`pi3d-ir-lut v1`):
    /// one `counts... activity max_ir_mv` line per sample, sorted for
    /// reproducible output.
    pub fn to_text(&self) -> String {
        let mut lines = Vec::new();
        for (counts, samples) in &self.entries {
            for &(activity, mv) in samples {
                let counts_text: Vec<String> = counts.iter().map(u8::to_string).collect();
                lines.push(format!("{} {activity} {mv}", counts_text.join(" ")));
            }
        }
        lines.sort();
        format!("pi3d-ir-lut v1 dies={}\n{}\n", self.dies, lines.join("\n"))
    }

    /// Parses a table serialized by [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// Returns [`ParseLutError`] describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, ParseLutError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| ParseLutError {
            line: 1,
            message: "empty input".into(),
        })?;
        let dies: usize = header
            .strip_prefix("pi3d-ir-lut v1 dies=")
            .and_then(|d| d.trim().parse().ok())
            .ok_or_else(|| ParseLutError {
                line: 1,
                message: format!("bad header {header:?}"),
            })?;
        let mut lut = IrDropLut::new(dies);
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| ParseLutError {
                line: idx + 1,
                message,
            };
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != dies + 2 {
                return Err(err(format!(
                    "expected {} fields, got {}",
                    dies + 2,
                    fields.len()
                )));
            }
            let mut counts = Vec::with_capacity(dies);
            for f in &fields[..dies] {
                counts.push(
                    f.parse::<u8>()
                        .map_err(|_| err(format!("bad count {f:?}")))?,
                );
            }
            let activity: f64 = fields[dies]
                .parse()
                .map_err(|_| err(format!("bad activity {:?}", fields[dies])))?;
            let mv: f64 = fields[dies + 1]
                .parse()
                .map_err(|_| err(format!("bad IR value {:?}", fields[dies + 1])))?;
            if !(0.0..=1.0).contains(&activity) {
                return Err(err(format!("activity {activity} out of [0, 1]")));
            }
            lut.insert(&counts, activity, MilliVolts(mv));
        }
        Ok(lut)
    }
}

/// Error returned when parsing a serialized [`IrDropLut`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLutError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseLutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LUT line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLutError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn lut() -> IrDropLut {
        let mut l = IrDropLut::new(4);
        l.insert(&[0, 0, 0, 2], 0.25, MilliVolts(23.0));
        l.insert(&[0, 0, 0, 2], 1.0, MilliVolts(30.0));
        l.insert(&[2, 2, 2, 2], 0.25, MilliVolts(25.0));
        l
    }

    #[test]
    fn exact_lookup() {
        let l = lut();
        assert_eq!(l.lookup(&[0, 0, 0, 2], 1.0), Some(MilliVolts(30.0)));
        assert_eq!(l.lookup(&[2, 2, 2, 2], 0.25), Some(MilliVolts(25.0)));
    }

    #[test]
    fn interpolation_between_samples() {
        let l = lut();
        let mid = l.lookup(&[0, 0, 0, 2], 0.625).unwrap();
        assert!((mid.value() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn clamping_outside_sampled_range() {
        let l = lut();
        assert_eq!(l.lookup(&[0, 0, 0, 2], 0.1), Some(MilliVolts(23.0)));
        assert_eq!(l.lookup(&[2, 2, 2, 2], 0.9), Some(MilliVolts(25.0)));
    }

    #[test]
    fn unknown_state_is_none() {
        assert_eq!(lut().lookup(&[1, 1, 1, 1], 0.5), None);
    }

    #[test]
    fn insert_overwrites_same_activity() {
        let mut l = lut();
        l.insert(&[0, 0, 0, 2], 1.0, MilliVolts(31.0));
        assert_eq!(l.lookup(&[0, 0, 0, 2], 1.0), Some(MilliVolts(31.0)));
    }

    #[test]
    fn implied_activity_is_bus_share_capped_by_bank_duty() {
        assert_eq!(IrDropLut::implied_activity(&[0, 0, 0, 2]), 1.0);
        assert_eq!(IrDropLut::implied_activity(&[0, 0, 2, 2]), 0.5);
        assert_eq!(IrDropLut::implied_activity(&[2, 2, 2, 2]), 0.25);
        assert_eq!(IrDropLut::implied_activity(&[0, 0, 0, 0]), 0.0);
        // A lone bank cannot stream zero-bubble: half the bus at most.
        assert_eq!(IrDropLut::implied_activity(&[0, 0, 0, 1]), 0.5);
        // Two dies with one bank each: bus share (1/2) and bank duty
        // (0.5 x 1) coincide.
        assert_eq!(IrDropLut::implied_activity(&[0, 1, 0, 1]), 0.5);
        assert_eq!(IrDropLut::implied_activity(&[1, 1, 1, 1]), 0.25);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn wrong_length_panics() {
        let _ = lut().lookup(&[0, 0], 0.5);
    }

    #[test]
    fn text_round_trip_preserves_every_sample() {
        let original = lut();
        let text = original.to_text();
        let parsed = IrDropLut::from_text(&text).unwrap();
        assert_eq!(parsed.dies(), original.dies());
        assert_eq!(parsed.state_count(), original.state_count());
        for s in original.states() {
            for act in [0.25, 0.5, 0.625, 1.0] {
                assert_eq!(
                    parsed.lookup(s, act),
                    original.lookup(s, act),
                    "{s:?} @ {act}"
                );
            }
        }
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(IrDropLut::from_text("").is_err());
        assert!(IrDropLut::from_text("not a header\n").is_err());
        let e = IrDropLut::from_text("pi3d-ir-lut v1 dies=4\n0 0 0 2 0.5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("fields"));
        let e = IrDropLut::from_text("pi3d-ir-lut v1 dies=2\n0 1 2.0 30.0\n").unwrap_err();
        assert!(e.to_string().contains("activity"));
    }
}
