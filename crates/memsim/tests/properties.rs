//! Property-based tests on the memory-controller simulator: safety
//! invariants must hold for arbitrary workloads and policies.
//!
//! Random workloads come from the seeded [`SplitMix64`] generator (the
//! proptest crate is unavailable offline); every case is reproducible
//! from the loop index printed in the assertion message.

use pi3d_layout::units::MilliVolts;
use pi3d_memsim::{IrDropLut, MemorySimulator, ReadPolicy, SimConfig, TimingParams, WorkloadSpec};
use pi3d_telemetry::rng::SplitMix64;

const CASES: u64 = 24;

/// A LUT shaped like the real platform's: higher per-die counts and higher
/// activity raise the drop; spreading helps.
fn synthetic_lut(dies: usize, scale: f64) -> IrDropLut {
    let mut lut = IrDropLut::new(dies);
    let mut states = vec![vec![]];
    for _ in 0..dies {
        states = states
            .into_iter()
            .flat_map(|s: Vec<u8>| {
                (0..=2u8).map(move |c| {
                    let mut s = s.clone();
                    s.push(c);
                    s
                })
            })
            .collect();
    }
    for s in &states {
        for &act in &[0.1f64, 0.25, 0.5, 1.0] {
            let worst = *s.iter().max().expect("nonempty") as f64;
            let total: u8 = s.iter().sum();
            let ir = scale * (5.0 + 9.0 * worst * (0.3 + 0.7 * act) + 1.0 * total as f64);
            lut.insert(s, act, MilliVolts(ir));
        }
    }
    lut
}

fn workload(count: usize, seed: u64, interval: u64) -> Vec<pi3d_memsim::ReadRequest> {
    let mut spec = WorkloadSpec::paper_ddr3();
    spec.count = count;
    spec.seed = seed;
    spec.arrival_interval = interval;
    spec.generate()
}

#[test]
fn every_request_completes_exactly_once() {
    let mut rng = SplitMix64::new(0x3e35_0001);
    for case in 0..CASES {
        let count = rng.range(50, 400) as usize;
        let seed = rng.next_u64();
        let interval = rng.range(3, 12);
        let policy = [
            ReadPolicy::standard(),
            ReadPolicy::ir_aware_fcfs(MilliVolts(40.0)),
            ReadPolicy::ir_aware_distr(MilliVolts(40.0)),
        ][rng.next_below(3) as usize];
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            policy,
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, interval);
        let stats = sim.run(&reqs).expect("completes");
        assert_eq!(stats.completed, count as u64, "case {case}");
        assert!(stats.row_hits <= stats.completed, "case {case}");
        assert!(stats.activates >= 1, "case {case}");
    }
}

#[test]
fn runtime_is_at_least_the_arrival_span_plus_pipeline() {
    let mut rng = SplitMix64::new(0x3e35_0002);
    for case in 0..CASES {
        let count = rng.range(50, 300) as usize;
        let seed = rng.next_u64();
        let t = TimingParams::ddr3_1600();
        let sim = MemorySimulator::new(
            t,
            SimConfig::paper_ddr3(),
            ReadPolicy::standard(),
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, 5);
        let stats = sim.run(&reqs).expect("completes");
        let min_cycles = (count as u64 - 1) * 5 + (t.t_cl + t.data_cycles()) as u64;
        assert!(
            stats.cycles >= min_cycles,
            "case {case}: {} < {min_cycles}",
            stats.cycles
        );
    }
}

#[test]
fn ir_aware_policies_never_break_their_cap() {
    let mut rng = SplitMix64::new(0x3e35_0003);
    for case in 0..CASES {
        let count = rng.range(100, 400) as usize;
        let seed = rng.next_u64();
        let cap_mv = rng.range_f64(18.0, 40.0);
        let policy = if rng.chance(0.5) {
            ReadPolicy::ir_aware_distr(MilliVolts(cap_mv))
        } else {
            ReadPolicy::ir_aware_fcfs(MilliVolts(cap_mv))
        };
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            policy,
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, 5);
        match sim.run(&reqs) {
            Ok(stats) => assert!(
                stats.max_ir.value() <= cap_mv + 1e-9,
                "case {case}: max IR {} broke cap {cap_mv}",
                stats.max_ir
            ),
            // Very tight caps may admit no state at all: a stall is the
            // correct, safe outcome.
            Err(_) => assert!(cap_mv < 25.0, "case {case}: stall at loose cap {cap_mv}"),
        }
    }
}

#[test]
fn tighter_caps_never_run_faster() {
    let mut rng = SplitMix64::new(0x3e35_0004);
    for case in 0..CASES {
        let count = rng.range(150, 350) as usize;
        let seed = rng.next_u64();
        let reqs = workload(count, seed, 5);
        let run_at = |cap: f64| {
            let sim = MemorySimulator::new(
                TimingParams::ddr3_1600(),
                SimConfig::paper_ddr3(),
                ReadPolicy::ir_aware_fcfs(MilliVolts(cap)),
                synthetic_lut(4, 1.0),
            );
            sim.run(&reqs).ok().map(|s| s.runtime_us)
        };
        let tight = run_at(22.0);
        let loose = run_at(38.0);
        if let (Some(t), Some(l)) = (tight, loose) {
            // Allow a small absolute jitter: with a loose cap the greedy
            // schedule can take marginally different bank-conflict paths.
            assert!(
                l <= t * 1.02 + 0.2,
                "case {case}: loose {l} slower than tight {t}"
            );
        } else {
            assert!(loose.is_some(), "case {case}: loose cap must run");
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = SplitMix64::new(0x3e35_0005);
    for case in 0..CASES {
        let count = rng.range(50, 200) as usize;
        let seed = rng.next_u64();
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            ReadPolicy::ir_aware_distr(MilliVolts(30.0)),
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, 5);
        let a = sim.run(&reqs).expect("completes");
        let b = sim.run(&reqs).expect("completes");
        assert_eq!(a, b, "case {case}");
    }
}
