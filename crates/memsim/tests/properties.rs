//! Property-based tests on the memory-controller simulator: safety
//! invariants must hold for arbitrary workloads and policies.

use pi3d_layout::units::MilliVolts;
use pi3d_memsim::{IrDropLut, MemorySimulator, ReadPolicy, SimConfig, TimingParams, WorkloadSpec};
use proptest::prelude::*;

/// A LUT shaped like the real platform's: higher per-die counts and higher
/// activity raise the drop; spreading helps.
fn synthetic_lut(dies: usize, scale: f64) -> IrDropLut {
    let mut lut = IrDropLut::new(dies);
    let mut states = vec![vec![]];
    for _ in 0..dies {
        states = states
            .into_iter()
            .flat_map(|s: Vec<u8>| {
                (0..=2u8).map(move |c| {
                    let mut s = s.clone();
                    s.push(c);
                    s
                })
            })
            .collect();
    }
    for s in &states {
        for &act in &[0.1f64, 0.25, 0.5, 1.0] {
            let worst = *s.iter().max().expect("nonempty") as f64;
            let total: u8 = s.iter().sum();
            let ir = scale * (5.0 + 9.0 * worst * (0.3 + 0.7 * act) + 1.0 * total as f64);
            lut.insert(s, act, MilliVolts(ir));
        }
    }
    lut
}

fn workload(count: usize, seed: u64, interval: u64) -> Vec<pi3d_memsim::ReadRequest> {
    let mut spec = WorkloadSpec::paper_ddr3();
    spec.count = count;
    spec.seed = seed;
    spec.arrival_interval = interval;
    spec.generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_completes_exactly_once(
        count in 50usize..400,
        seed in any::<u64>(),
        interval in 3u64..12,
        policy_idx in 0..3usize,
    ) {
        let policy = [
            ReadPolicy::standard(),
            ReadPolicy::ir_aware_fcfs(MilliVolts(40.0)),
            ReadPolicy::ir_aware_distr(MilliVolts(40.0)),
        ][policy_idx];
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            policy,
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, interval);
        let stats = sim.run(&reqs).expect("completes");
        prop_assert_eq!(stats.completed, count as u64);
        prop_assert!(stats.row_hits <= stats.completed);
        prop_assert!(stats.activates >= 1);
    }

    #[test]
    fn runtime_is_at_least_the_arrival_span_plus_pipeline(
        count in 50usize..300,
        seed in any::<u64>(),
    ) {
        let t = TimingParams::ddr3_1600();
        let sim = MemorySimulator::new(
            t,
            SimConfig::paper_ddr3(),
            ReadPolicy::standard(),
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, 5);
        let stats = sim.run(&reqs).expect("completes");
        let min_cycles = (count as u64 - 1) * 5 + (t.t_cl + t.data_cycles()) as u64;
        prop_assert!(stats.cycles >= min_cycles, "{} < {min_cycles}", stats.cycles);
    }

    #[test]
    fn ir_aware_policies_never_break_their_cap(
        count in 100usize..400,
        seed in any::<u64>(),
        cap_mv in 18.0f64..40.0,
        distr in any::<bool>(),
    ) {
        let policy = if distr {
            ReadPolicy::ir_aware_distr(MilliVolts(cap_mv))
        } else {
            ReadPolicy::ir_aware_fcfs(MilliVolts(cap_mv))
        };
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            policy,
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, 5);
        match sim.run(&reqs) {
            Ok(stats) => prop_assert!(
                stats.max_ir.value() <= cap_mv + 1e-9,
                "max IR {} broke cap {cap_mv}",
                stats.max_ir
            ),
            // Very tight caps may admit no state at all: a stall is the
            // correct, safe outcome.
            Err(_) => prop_assert!(cap_mv < 25.0, "stall at loose cap {cap_mv}"),
        }
    }

    #[test]
    fn tighter_caps_never_run_faster(
        count in 150usize..350,
        seed in any::<u64>(),
    ) {
        let reqs = workload(count, seed, 5);
        let run_at = |cap: f64| {
            let sim = MemorySimulator::new(
                TimingParams::ddr3_1600(),
                SimConfig::paper_ddr3(),
                ReadPolicy::ir_aware_fcfs(MilliVolts(cap)),
                synthetic_lut(4, 1.0),
            );
            sim.run(&reqs).ok().map(|s| s.runtime_us)
        };
        let tight = run_at(22.0);
        let loose = run_at(38.0);
        if let (Some(t), Some(l)) = (tight, loose) {
            // Allow a small absolute jitter: with a loose cap the greedy
            // schedule can take marginally different bank-conflict paths.
            prop_assert!(l <= t * 1.02 + 0.2, "loose {l} slower than tight {t}");
        } else {
            prop_assert!(loose.is_some(), "loose cap must run");
        }
    }

    #[test]
    fn simulation_is_deterministic(
        count in 50usize..200,
        seed in any::<u64>(),
    ) {
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            ReadPolicy::ir_aware_distr(MilliVolts(30.0)),
            synthetic_lut(4, 1.0),
        );
        let reqs = workload(count, seed, 5);
        let a = sim.run(&reqs).expect("completes");
        let b = sim.run(&reqs).expect("completes");
        prop_assert_eq!(a, b);
    }
}
