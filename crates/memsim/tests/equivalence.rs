//! Bit-identity pin between the event-driven scheduler and the per-cycle
//! reference stepper.
//!
//! `MemorySimulator::run` skips from event to event and memoizes LUT
//! admission checks; `run_reference` steps one cycle at a time with no
//! caching. Both must produce *bit-identical* [`SimStats`] — including the
//! f64 fields (`avg_queue_depth`, `avg_latency_cycles`, `max_ir`) — for
//! every policy, seed, timing preset, and constraint level, and identical
//! `Stalled` errors (snapshot included) when the constraint admits no
//! state. Random cases come from the seeded [`SplitMix64`] generator so
//! every failure is reproducible from the printed case index.

use pi3d_layout::units::MilliVolts;
use pi3d_memsim::{
    IrDropLut, MemorySimulator, ReadPolicy, SimConfig, SimulateError, TimingParams, WorkloadSpec,
};
use pi3d_telemetry::rng::SplitMix64;

/// A LUT shaped like the real platform's: higher per-die counts and higher
/// activity raise the drop; spreading helps.
fn synthetic_lut(dies: usize) -> IrDropLut {
    let mut lut = IrDropLut::new(dies);
    let mut states = vec![vec![]];
    for _ in 0..dies {
        states = states
            .into_iter()
            .flat_map(|s: Vec<u8>| {
                (0..=2u8).map(move |c| {
                    let mut s = s.clone();
                    s.push(c);
                    s
                })
            })
            .collect();
    }
    for s in &states {
        for &act in &[0.1f64, 0.25, 0.5, 1.0] {
            let worst = *s.iter().max().expect("nonempty") as f64;
            let total: u8 = s.iter().sum();
            let ir = 5.0 + 9.0 * worst * (0.3 + 0.7 * act) + 1.0 * total as f64;
            lut.insert(s, act, MilliVolts(ir));
        }
    }
    lut
}

fn workload(count: usize, seed: u64, interval: u64) -> Vec<pi3d_memsim::ReadRequest> {
    let mut spec = WorkloadSpec::paper_ddr3();
    spec.count = count;
    spec.seed = seed;
    spec.arrival_interval = interval;
    spec.generate()
}

fn policies(constraint: MilliVolts) -> [ReadPolicy; 3] {
    [
        ReadPolicy::standard(),
        ReadPolicy::ir_aware_fcfs(constraint),
        ReadPolicy::ir_aware_distr(constraint),
    ]
}

fn assert_equivalent(sim: &MemorySimulator, reqs: &[pi3d_memsim::ReadRequest], label: &str) {
    let event = sim.run(reqs);
    let reference = sim.run_reference(reqs);
    assert_eq!(
        event, reference,
        "{label}: event loop diverged from stepper"
    );
}

/// The pin the acceptance criteria name: all three policies, several
/// seeds and arrival intervals, the no-refresh DDR3 preset.
#[test]
fn event_loop_matches_reference_across_policies_and_seeds() {
    let mut rng = SplitMix64::new(0x3e35_00e1);
    for case in 0..18u64 {
        let count = rng.range(100, 600) as usize;
        let seed = rng.next_u64();
        let interval = rng.range(2, 14);
        let reqs = workload(count, seed, interval);
        for policy in policies(MilliVolts(30.0)) {
            let sim = MemorySimulator::new(
                TimingParams::ddr3_1600(),
                SimConfig::paper_ddr3(),
                policy,
                synthetic_lut(4),
            );
            assert_equivalent(
                &sim,
                &reqs,
                &format!("case {case} ({}, interval {interval})", policy.name()),
            );
        }
    }
}

/// Constraint levels from comfortably loose down to throttling-heavy:
/// tight caps exercise the stall-accounting and read-bubble paths where
/// skipped-cycle bookkeeping must match the stepper exactly.
#[test]
fn event_loop_matches_reference_across_constraint_levels() {
    for &cap in &[40.0, 30.0, 27.0, 25.5, 24.5] {
        let reqs = workload(400, 0x00c0_ffee, 4);
        for policy in policies(MilliVolts(cap))[1..].iter() {
            let sim = MemorySimulator::new(
                TimingParams::ddr3_1600(),
                SimConfig::paper_ddr3(),
                *policy,
                synthetic_lut(4),
            );
            assert_equivalent(&sim, &reqs, &format!("cap {cap} ({})", policy.name()));
        }
    }
}

/// Refresh enables the tREFI/tRFC event sources and the per-die LUT-count
/// override while refreshing; both loops must agree there too.
#[test]
fn event_loop_matches_reference_with_refresh() {
    let mut rng = SplitMix64::new(0x3e35_00e2);
    for case in 0..6u64 {
        let count = rng.range(300, 1200) as usize;
        let seed = rng.next_u64();
        let reqs = workload(count, seed, 5);
        for policy in policies(MilliVolts(32.0)) {
            let sim = MemorySimulator::new(
                TimingParams::ddr3_1600_with_refresh(),
                SimConfig::paper_ddr3(),
                policy,
                synthetic_lut(4),
            );
            assert_equivalent(
                &sim,
                &reqs,
                &format!("refresh case {case} ({})", policy.name()),
            );
        }
    }
}

/// Other timing presets flex every derived event offset (tFAW window,
/// burst occupancy, idle-close thresholds, stall horizon).
#[test]
fn event_loop_matches_reference_on_other_timing_presets() {
    for (name, timing) in [
        ("wide_io_200", TimingParams::wide_io_200()),
        ("hmc_2500", TimingParams::hmc_2500()),
    ] {
        let reqs = workload(500, 0x5eed_0001, 6);
        for policy in policies(MilliVolts(30.0)) {
            let sim =
                MemorySimulator::new(timing, SimConfig::paper_ddr3(), policy, synthetic_lut(4));
            assert_equivalent(&sim, &reqs, &format!("{name} ({})", policy.name()));
        }
    }
}

/// An impossible constraint must stall identically: same cycle, same
/// completed count, and the same diagnostic snapshot.
#[test]
fn stalled_errors_are_identical() {
    let reqs = workload(50, 0x5eed_0002, 5);
    for policy in [
        ReadPolicy::ir_aware_fcfs(MilliVolts(1.0)),
        ReadPolicy::ir_aware_distr(MilliVolts(1.0)),
    ] {
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            policy,
            synthetic_lut(4),
        );
        let event = sim.run(&reqs).expect_err("must stall");
        let reference = sim.run_reference(&reqs).expect_err("must stall");
        assert_eq!(event, reference, "{}", policy.name());
        let SimulateError::Stalled { snapshot, .. } = event else {
            panic!("unexpected error variant for {}", policy.name());
        };
        assert_eq!(snapshot.constraint_mv, Some(1.0), "{}", policy.name());
    }
}

/// A constraint tight enough to stall *mid-run* (after some completions)
/// exercises the jump-over-the-horizon stall path with non-trivial state.
#[test]
fn midrun_stalls_are_identical() {
    // A LUT whose two-bank states are all forbidden (no entry) forces a
    // stall once the workload needs a second bank on some die while the
    // first stays wanted.
    let mut lut = IrDropLut::new(4);
    for die in 0..4usize {
        let mut s = vec![0u8; 4];
        s[die] = 1;
        for &act in &[0.1f64, 0.5, 1.0] {
            lut.insert(&s, act, MilliVolts(10.0));
        }
    }
    let reqs = workload(300, 0x5eed_0003, 3);
    for scheduling in [
        ReadPolicy::ir_aware_fcfs(MilliVolts(20.0)),
        ReadPolicy::ir_aware_distr(MilliVolts(20.0)),
    ] {
        let sim = MemorySimulator::new(
            TimingParams::ddr3_1600(),
            SimConfig::paper_ddr3(),
            scheduling,
            lut.clone(),
        );
        let event = sim.run(&reqs);
        let reference = sim.run_reference(&reqs);
        assert_eq!(event, reference, "{}", scheduling.name());
    }
}
