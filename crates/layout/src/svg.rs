//! SVG rendering of floorplans and vertical-element placements — the
//! textual stand-in for the paper's Figure 3 auto-generated layout plots.
//!
//! The renderer is dependency-free: it emits plain SVG 1.1 markup.

use crate::floorplan::{BlockKind, Floorplan};
use crate::stack::StackDesign;
use std::fmt::Write as _;

/// Pixels per millimetre in the rendered image.
const SCALE: f64 = 60.0;
/// Margin around the die, px.
const MARGIN: f64 = 20.0;

fn fill_for(kind: BlockKind) -> &'static str {
    match kind {
        BlockKind::Array => "#cfe2f3",
        BlockKind::RowDecoder => "#f9cb9c",
        BlockKind::ColumnDecoder => "#ffe599",
        BlockKind::Periphery => "#d9d2e9",
        BlockKind::Core => "#d9ead3",
        BlockKind::Uncore => "#ead1dc",
    }
}

/// Renders a floorplan (blocks with labels) to an SVG string.
///
/// # Examples
///
/// ```
/// use pi3d_layout::{render_floorplan_svg, Floorplan};
/// use pi3d_layout::units::Mm;
///
/// let fp = Floorplan::dram(Mm(6.8), Mm(6.7), 8);
/// let svg = render_floorplan_svg(&fp, "stacked DDR3 die");
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("bank0.array"));
/// ```
pub fn render_floorplan_svg(floorplan: &Floorplan, title: &str) -> String {
    render_internal(floorplan, title, &[], &[])
}

/// Renders a design's DRAM die: floorplan blocks plus the power-TSV sites
/// (circles) and, for on-chip designs, the C4 power-bump grid of the logic
/// die projected into DRAM coordinates (crosses).
pub fn render_design_svg(design: &StackDesign, title: &str) -> String {
    let fp = design.dram_floorplan();
    let spec = design.benchmark().spec();
    let (w, h) = (spec.dram_width.value(), spec.dram_height.value());
    let tsvs = design.tsv().positions(w, h);
    let bumps = match spec.logic_size {
        Some((lw, lh)) => crate::tsv::bump_grid(lw.value(), lh.value(), crate::tsv::C4_PITCH_MM)
            .into_iter()
            .map(|(x, y)| (x - (lw.value() - w) / 2.0, y - (lh.value() - h) / 2.0))
            .filter(|&(x, y)| x >= 0.0 && x <= w && y >= 0.0 && y <= h)
            .collect(),
        None => Vec::new(),
    };
    render_internal(&fp, title, &tsvs, &bumps)
}

fn render_internal(
    floorplan: &Floorplan,
    title: &str,
    tsvs: &[(f64, f64)],
    bumps: &[(f64, f64)],
) -> String {
    let (w, h) = (floorplan.width().value(), floorplan.height().value());
    let (img_w, img_h) = (w * SCALE + 2.0 * MARGIN, h * SCALE + 2.0 * MARGIN + 24.0);
    // SVG's y axis grows downward; die coordinates grow upward.
    let px = |x: f64| MARGIN + x * SCALE;
    let py = |y: f64| MARGIN + (h - y) * SCALE;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{img_w:.0}\" height=\"{img_h:.0}\" \
         viewBox=\"0 0 {img_w:.0} {img_h:.0}\">"
    );
    let _ = writeln!(
        svg,
        "<text x=\"{MARGIN}\" y=\"{:.0}\" font-family=\"monospace\" font-size=\"14\">{}</text>",
        img_h - 6.0,
        xml_escape(title)
    );

    for block in floorplan.blocks() {
        let r = block.rect;
        let _ = writeln!(
            svg,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
             fill=\"{}\" stroke=\"#444\" stroke-width=\"0.6\"><title>{}</title></rect>",
            px(r.x0),
            py(r.y1),
            r.width() * SCALE,
            r.height() * SCALE,
            fill_for(block.kind),
            xml_escape(&block.name)
        );
        if block.kind == BlockKind::Array || block.kind == BlockKind::Core {
            let (cx, cy) = r.center();
            let _ = writeln!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-family=\"monospace\" font-size=\"9\" \
                 text-anchor=\"middle\">{}</text>",
                px(cx),
                py(cy),
                xml_escape(block.name.trim_end_matches(".array"))
            );
        }
    }

    for &(x, y) in tsvs {
        let _ = writeln!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#cc0000\" \
             fill-opacity=\"0.8\"><title>power TSV</title></circle>",
            px(x),
            py(y)
        );
    }
    for &(x, y) in bumps {
        let (cx, cy) = (px(x), py(y));
        let _ = writeln!(
            svg,
            "<path d=\"M {:.1} {:.1} l 8 8 m 0 -8 l -8 8\" stroke=\"#1155cc\" \
             stroke-width=\"1.5\"><title>power C4 bump</title></path>",
            cx - 4.0,
            cy - 4.0
        );
    }

    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::units::Mm;

    #[test]
    fn floorplan_svg_contains_every_block() {
        let fp = Floorplan::dram(Mm(6.8), Mm(6.7), 8);
        let svg = render_floorplan_svg(&fp, "die");
        for block in fp.blocks() {
            assert!(svg.contains(&block.name), "missing {}", block.name);
        }
        assert_eq!(svg.matches("<rect").count(), fp.blocks().len());
    }

    #[test]
    fn design_svg_shows_tsvs_and_bumps() {
        let design = StackDesign::baseline(Benchmark::StackedDdr3OnChip);
        let svg = render_design_svg(&design, "on-chip DDR3");
        assert_eq!(svg.matches("<circle").count(), design.tsv().count());
        assert!(svg.contains("power C4 bump"));
    }

    #[test]
    fn off_chip_design_has_no_bump_overlay() {
        let design = StackDesign::baseline(Benchmark::StackedDdr3OffChip);
        let svg = render_design_svg(&design, "off-chip DDR3");
        assert!(!svg.contains("power C4 bump"));
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(xml_escape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }
}
