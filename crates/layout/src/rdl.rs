use std::fmt;

/// Which dies carry a backside redistribution layer (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RdlScope {
    /// RDL only between the logic die and the bottom DRAM die.
    BottomOnly,
    /// RDL on the backside of every DRAM die.
    AllDies,
}

impl fmt::Display for RdlScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RdlScope::BottomOnly => "bottom die only",
            RdlScope::AllDies => "all dies",
        })
    }
}

/// Backside redistribution-layer configuration.
///
/// The RDL is a thick, low-resistivity metal layer fabricated on a die's
/// backside. It is cheap relative to edge TSVs (no keep-out zones on the
/// logic die) and is used to carry supply current from centre TSV groups
/// out to the die edge — at the price of its own series resistance
/// (Table 2, options (c) and (d)).
///
/// # Examples
///
/// ```
/// use pi3d_layout::{RdlConfig, RdlScope};
///
/// assert!(!RdlConfig::none().is_enabled());
/// assert!(RdlConfig::enabled(RdlScope::AllDies).is_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RdlConfig {
    scope: Option<RdlScope>,
}

impl RdlConfig {
    /// No RDL (the default).
    pub fn none() -> Self {
        RdlConfig { scope: None }
    }

    /// RDL present with the given scope.
    pub fn enabled(scope: RdlScope) -> Self {
        RdlConfig { scope: Some(scope) }
    }

    /// Whether any RDL is present.
    pub fn is_enabled(&self) -> bool {
        self.scope.is_some()
    }

    /// The RDL scope, if enabled.
    pub fn scope(&self) -> Option<RdlScope> {
        self.scope
    }

    /// Whether die `index` (0 = bottom DRAM die) carries an RDL.
    pub fn applies_to_die(&self, index: usize) -> bool {
        match self.scope {
            None => false,
            Some(RdlScope::BottomOnly) => index == 0,
            Some(RdlScope::AllDies) => true,
        }
    }
}

impl fmt::Display for RdlConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.scope {
            None => f.write_str("no RDL"),
            Some(s) => write!(f, "RDL ({s})"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(RdlConfig::default(), RdlConfig::none());
        assert!(!RdlConfig::default().is_enabled());
    }

    #[test]
    fn scope_controls_per_die_application() {
        let bottom = RdlConfig::enabled(RdlScope::BottomOnly);
        assert!(bottom.applies_to_die(0));
        assert!(!bottom.applies_to_die(1));

        let all = RdlConfig::enabled(RdlScope::AllDies);
        for die in 0..4 {
            assert!(all.applies_to_die(die));
        }

        assert!(!RdlConfig::none().applies_to_die(0));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(RdlConfig::none().to_string(), "no RDL");
        assert_eq!(
            RdlConfig::enabled(RdlScope::BottomOnly).to_string(),
            "RDL (bottom die only)"
        );
    }
}
