use crate::powermap::PowerModel;
use crate::units::{MilliWatts, Mm, Volts};
use std::fmt;

/// The four 3D DRAM benchmark designs of the paper (Figure 1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Stacked DDR3 as a stand-alone chip on package balls.
    StackedDdr3OffChip,
    /// Stacked DDR3 mounted on an OpenSPARC T2 host logic die.
    StackedDdr3OnChip,
    /// JEDEC Wide I/O mounted on the T2 die (centre micro-bumps, 4
    /// channels, 200 Mbps/pin).
    WideIo,
    /// Hybrid Memory Cube on its own control logic die (16 channels,
    /// 2500 Mbps/pin).
    Hmc,
}

impl Benchmark {
    /// All four benchmarks, in the paper's Table 9 order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::StackedDdr3OffChip,
        Benchmark::StackedDdr3OnChip,
        Benchmark::WideIo,
        Benchmark::Hmc,
    ];

    /// The Table 1 specification of this benchmark.
    pub fn spec(self) -> BenchmarkSpec {
        match self {
            Benchmark::StackedDdr3OffChip => BenchmarkSpec {
                benchmark: self,
                name: "Stacked DDR3 (off-chip)",
                dram_width: Mm(6.8),
                dram_height: Mm(6.7),
                logic_size: None,
                dram_dies: 4,
                banks_per_die: 8,
                channels: 1,
                speed_mbps_per_pin: 1600,
                data_width: 8,
                vdd: Volts(1.5),
                logic_power: MilliWatts(0.0),
            },
            Benchmark::StackedDdr3OnChip => BenchmarkSpec {
                benchmark: self,
                name: "Stacked DDR3 (on-chip)",
                dram_width: Mm(6.8),
                dram_height: Mm(6.7),
                logic_size: Some((Mm(9.0), Mm(8.0))),
                dram_dies: 4,
                banks_per_die: 8,
                channels: 1,
                speed_mbps_per_pin: 1600,
                data_width: 8,
                vdd: Volts(1.5),
                logic_power: MilliWatts(3000.0),
            },
            Benchmark::WideIo => BenchmarkSpec {
                benchmark: self,
                name: "Wide I/O",
                dram_width: Mm(7.2),
                dram_height: Mm(7.2),
                logic_size: Some((Mm(9.0), Mm(8.0))),
                dram_dies: 4,
                banks_per_die: 16,
                channels: 4,
                speed_mbps_per_pin: 200,
                data_width: 512,
                vdd: Volts(1.2),
                logic_power: MilliWatts(3000.0),
            },
            Benchmark::Hmc => BenchmarkSpec {
                benchmark: self,
                name: "HMC",
                dram_width: Mm(7.2),
                dram_height: Mm(6.4),
                logic_size: Some((Mm(8.8), Mm(6.4))),
                dram_dies: 4,
                banks_per_die: 32,
                channels: 16,
                speed_mbps_per_pin: 2500,
                data_width: 512,
                vdd: Volts(1.5),
                logic_power: MilliWatts(2200.0),
            },
        }
    }

    /// The per-die power model appropriate to this benchmark.
    pub fn power_model(self) -> PowerModel {
        match self {
            Benchmark::StackedDdr3OffChip | Benchmark::StackedDdr3OnChip => PowerModel::ddr3(),
            Benchmark::WideIo => PowerModel::wide_io(),
            Benchmark::Hmc => PowerModel::hmc(),
        }
    }

    /// Whether the DRAM stack sits on a host/controller logic die.
    pub fn is_mounted_on_logic(self) -> bool {
        !matches!(self, Benchmark::StackedDdr3OffChip)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Table 1 design specification of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Which benchmark this describes.
    pub benchmark: Benchmark,
    /// Human-readable name.
    pub name: &'static str,
    /// DRAM die width.
    pub dram_width: Mm,
    /// DRAM die height.
    pub dram_height: Mm,
    /// Logic die size, if the stack is mounted on one.
    pub logic_size: Option<(Mm, Mm)>,
    /// Number of stacked DRAM dies.
    pub dram_dies: usize,
    /// Banks per DRAM die.
    pub banks_per_die: usize,
    /// Independent memory channels.
    pub channels: usize,
    /// Interface speed, Mbps per pin.
    pub speed_mbps_per_pin: u32,
    /// Data bus width in bits.
    pub data_width: u32,
    /// Supply voltage.
    pub vdd: Volts,
    /// Total power of the host/controller logic die.
    pub logic_power: MilliWatts,
}

impl BenchmarkSpec {
    /// Peak interface bandwidth in GB/s (`speed × width / 8`).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.speed_mbps_per_pin as f64 * self.data_width as f64 * self.channels as f64
            / 8.0
            / 1000.0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn table1_dimensions() {
        let ddr3 = Benchmark::StackedDdr3OffChip.spec();
        assert_eq!((ddr3.dram_width, ddr3.dram_height), (Mm(6.8), Mm(6.7)));
        assert_eq!(ddr3.banks_per_die, 8);
        assert_eq!(ddr3.channels, 1);
        assert!(ddr3.logic_size.is_none());

        let wio = Benchmark::WideIo.spec();
        assert_eq!(wio.banks_per_die, 16);
        assert_eq!(wio.channels, 4);
        assert_eq!(wio.vdd, Volts(1.2));

        let hmc = Benchmark::Hmc.spec();
        assert_eq!(hmc.banks_per_die, 32);
        assert_eq!(hmc.channels, 16);
        assert_eq!(hmc.logic_size, Some((Mm(8.8), Mm(6.4))));
    }

    #[test]
    fn all_benchmarks_have_four_dies() {
        for b in Benchmark::ALL {
            assert_eq!(b.spec().dram_dies, 4);
        }
    }

    #[test]
    fn mounted_benchmarks_have_logic_power() {
        for b in Benchmark::ALL {
            let spec = b.spec();
            assert_eq!(b.is_mounted_on_logic(), spec.logic_size.is_some());
            if b.is_mounted_on_logic() {
                assert!(spec.logic_power.value() > 0.0);
            }
        }
    }

    #[test]
    fn hmc_is_the_bandwidth_leader() {
        let bw: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|b| b.spec().peak_bandwidth_gbps())
            .collect();
        let hmc = Benchmark::Hmc.spec().peak_bandwidth_gbps();
        for (i, &v) in bw.iter().enumerate() {
            assert!(v <= hmc, "benchmark {i} beats HMC: {v} vs {hmc}");
        }
        // 2500 Mbps × 512 bits × 16 channels / 8 = 2560 GB/s.
        assert!((hmc - 2560.0).abs() < 1.0);
    }

    #[test]
    fn hmc_power_model_is_the_hottest() {
        let hot = Benchmark::Hmc.power_model().die_power(4, 1.0);
        let cool = Benchmark::WideIo.power_model().die_power(4, 1.0);
        assert!(hot.value() > 2.0 * cool.value());
    }

    #[test]
    fn display_names() {
        assert_eq!(Benchmark::WideIo.to_string(), "Wide I/O");
        assert_eq!(Benchmark::Hmc.to_string(), "HMC");
    }
}
