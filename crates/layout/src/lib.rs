//! 3D DRAM design descriptions: floorplans, power maps, PDN/TSV/RDL/bonding
//! specifications, the four DAC'15 benchmark configurations, and the
//! packaging cost model.
//!
//! This crate is the "design, packaging, and architecture input" half of the
//! platform: it owns every knob the paper optimizes (Table 8) and turns a
//! configuration into the geometric and electrical data the R-Mesh engine
//! (`pi3d-mesh`) needs — block-level floorplans, rasterized power maps, TSV
//! and bump coordinates, and per-layer PDN usage.
//!
//! # Examples
//!
//! Build the baseline off-chip stacked-DDR3 design and inspect it:
//!
//! ```
//! use pi3d_layout::{Benchmark, StackDesign};
//!
//! let design = StackDesign::baseline(Benchmark::StackedDdr3OffChip);
//! assert_eq!(design.dram_die_count(), 4);
//! assert!(!design.mounting().is_on_chip());
//! let cost = design.cost();
//! assert!(cost.total > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(missing_debug_implementations)]

mod benchmarks;
mod bonding;
mod cost;
mod error;
mod faults;
mod floorplan;
mod pdn;
mod powermap;
mod rdl;
mod stack;
mod state;
mod svg;
mod tech;
mod tsv;
pub mod units;

pub use benchmarks::{Benchmark, BenchmarkSpec};
pub use bonding::{BondingStyle, Mounting};
pub use cost::{CostBreakdown, CostModel};
pub use error::LayoutError;
pub use faults::FaultSpec;
pub use floorplan::{Block, BlockKind, Floorplan, Rect};
pub use pdn::{PdnSpec, PowerNet};
pub use powermap::{OpKind, PowerMap, PowerModel};
pub use rdl::{RdlConfig, RdlScope};
pub use stack::{StackDesign, StackDesignBuilder};
pub use state::{BankGroup, DieState, MemoryState, ParseMemoryStateError};
pub use svg::{render_design_svg, render_floorplan_svg};
pub use tech::{MetalLayer, RouteDirection, Technology};
pub use tsv::{bump_grid, TsvConfig, TsvPlacement, C4_PITCH_MM};
