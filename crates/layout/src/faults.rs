//! Layout-level fault specifications for the power-delivery network.
//!
//! Real 3D-DRAM PDNs lose TSVs and bumps to manufacturing defects and see
//! electromigration-driven resistance drift over their lifetime; the
//! paper's packaging tables all assume a defect-free network. A
//! [`FaultSpec`] describes a *statistical* defect population — open
//! probabilities per discrete vertical element class plus an EM-style
//! resistance-drift scale — together with the seed that makes any drawn
//! defect set reproducible. The R-Mesh assembler (`pi3d-mesh`) consumes
//! the spec and injects the concrete defects during stamping.
//!
//! The spec lives in `pi3d-layout` so that every layer of the stack
//! (mesh, core sweeps, CLI) can speak about faults without depending on
//! the mesh crate.

use crate::LayoutError;

/// A seeded, statistical description of PDN defects to inject into a
/// stack's R-Mesh.
///
/// All rates are probabilities in `[0, 1]` applied independently per
/// element site; `em_drift` is a non-negative scale factor for the
/// per-segment series-resistance multiplier (0 disables drift). Equal
/// specs (including the seed) always produce identical defect sets.
///
/// # Examples
///
/// ```
/// use pi3d_layout::FaultSpec;
///
/// let spec = FaultSpec::new(42).with_tsv_open(0.1).with_em_drift(0.2);
/// assert!(spec.is_active());
/// assert!(spec.validate().is_ok());
/// assert!(!FaultSpec::none().is_active());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for the defect draws; equal seeds give equal defect sets.
    pub seed: u64,
    /// Probability that a power TSV site (any die-to-die interface,
    /// including B2B pad stacks) is fully open.
    pub tsv_open: f64,
    /// Probability that a supply contact — C4 bump, package ball /
    /// supply-entry site, or bond wire — is fully open.
    pub bump_open: f64,
    /// Probability that one intra-die via cell (M2↔M3 or F2F micro-via)
    /// is voided.
    pub via_void: f64,
    /// Electromigration-style resistance drift scale: each surviving
    /// vertical element's series resistance is multiplied by
    /// `1 + em_drift · e` with `e` an exponential(1) draw.
    pub em_drift: f64,
}

impl FaultSpec {
    /// A spec with every rate zero (no faults) and the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            tsv_open: 0.0,
            bump_open: 0.0,
            via_void: 0.0,
            em_drift: 0.0,
        }
    }

    /// The canonical "no faults" spec.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Sets the TSV-open probability.
    #[must_use]
    pub fn with_tsv_open(mut self, rate: f64) -> Self {
        self.tsv_open = rate;
        self
    }

    /// Sets the supply-contact open probability.
    #[must_use]
    pub fn with_bump_open(mut self, rate: f64) -> Self {
        self.bump_open = rate;
        self
    }

    /// Sets the via-void probability.
    #[must_use]
    pub fn with_via_void(mut self, rate: f64) -> Self {
        self.via_void = rate;
        self
    }

    /// Sets the EM resistance-drift scale.
    #[must_use]
    pub fn with_em_drift(mut self, scale: f64) -> Self {
        self.em_drift = scale;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any fault mechanism is enabled.
    pub fn is_active(&self) -> bool {
        self.tsv_open > 0.0 || self.bump_open > 0.0 || self.via_void > 0.0 || self.em_drift > 0.0
    }

    /// Returns a copy with every rate scaled by `factor` (clamped to
    /// `[0, 1]` for the open probabilities). Used by Monte Carlo sweeps
    /// that walk a severity axis.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        FaultSpec {
            seed: self.seed,
            tsv_open: (self.tsv_open * factor).clamp(0.0, 1.0),
            bump_open: (self.bump_open * factor).clamp(0.0, 1.0),
            via_void: (self.via_void * factor).clamp(0.0, 1.0),
            em_drift: (self.em_drift * factor).max(0.0),
        }
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::ParameterOutOfRange`] for a rate outside
    /// `[0, 1]`, a negative drift scale, or any non-finite value.
    pub fn validate(&self) -> Result<(), LayoutError> {
        let rate = |parameter: &'static str, value: f64| -> Result<(), LayoutError> {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(LayoutError::ParameterOutOfRange {
                    parameter,
                    value,
                    min: 0.0,
                    max: 1.0,
                });
            }
            Ok(())
        };
        rate("tsv_open", self.tsv_open)?;
        rate("bump_open", self.bump_open)?;
        rate("via_void", self.via_void)?;
        if !self.em_drift.is_finite() || self.em_drift < 0.0 {
            return Err(LayoutError::ParameterOutOfRange {
                parameter: "em_drift",
                value: self.em_drift,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        Ok(())
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let spec = FaultSpec::none();
        assert!(!spec.is_active());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let spec = FaultSpec::new(7)
            .with_tsv_open(0.25)
            .with_bump_open(0.5)
            .with_via_void(0.1)
            .with_em_drift(1.5);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.tsv_open, 0.25);
        assert_eq!(spec.bump_open, 0.5);
        assert_eq!(spec.via_void, 0.1);
        assert_eq!(spec.em_drift, 1.5);
        assert!(spec.is_active());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn out_of_range_rates_are_rejected() {
        assert!(FaultSpec::new(0).with_tsv_open(1.5).validate().is_err());
        assert!(FaultSpec::new(0).with_bump_open(-0.1).validate().is_err());
        assert!(FaultSpec::new(0)
            .with_via_void(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultSpec::new(0).with_em_drift(-1.0).validate().is_err());
    }

    #[test]
    fn scaling_clamps_rates_but_not_drift() {
        let spec = FaultSpec::new(3)
            .with_tsv_open(0.8)
            .with_em_drift(0.5)
            .scaled(2.0);
        assert_eq!(spec.tsv_open, 1.0);
        assert_eq!(spec.em_drift, 1.0);
        assert_eq!(spec.seed, 3);
        let off = spec.scaled(0.0);
        assert!(!off.is_active());
    }
}
