use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating 3D DRAM designs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A continuous design parameter fell outside its allowed range
    /// (the "Input Range" column of the paper's Table 8).
    ParameterOutOfRange {
        /// Name of the parameter (e.g. `"m2_usage"`).
        parameter: &'static str,
        /// Supplied value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A combination of options is invalid for the selected benchmark
    /// (e.g. distributed TSVs on stacked DDR3, or a non-160 TSV count on
    /// Wide I/O).
    InvalidCombination {
        /// Human-readable description of the conflict.
        reason: String,
    },
    /// A memory state referenced a die outside the stack.
    DieIndexOutOfRange {
        /// Offending die index.
        die: usize,
        /// Number of DRAM dies in the stack.
        dies: usize,
    },
    /// A memory state requested more active banks than the die has.
    TooManyActiveBanks {
        /// Requested active-bank count.
        requested: usize,
        /// Banks available per die.
        available: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ParameterOutOfRange {
                parameter,
                value,
                min,
                max,
            } => {
                write!(
                    f,
                    "{parameter} = {value} outside allowed range [{min}, {max}]"
                )
            }
            LayoutError::InvalidCombination { reason } => {
                write!(f, "invalid design combination: {reason}")
            }
            LayoutError::DieIndexOutOfRange { die, dies } => {
                write!(f, "die index {die} out of range for a {dies}-die stack")
            }
            LayoutError::TooManyActiveBanks {
                requested,
                available,
            } => {
                write!(
                    f,
                    "{requested} active banks requested but die has only {available}"
                )
            }
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parameter() {
        let e = LayoutError::ParameterOutOfRange {
            parameter: "m2_usage",
            value: 0.5,
            min: 0.1,
            max: 0.2,
        };
        assert!(e.to_string().contains("m2_usage"));
        assert!(e.to_string().contains("[0.1, 0.2]"));
    }

    #[test]
    fn error_is_send_sync_std_error() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<LayoutError>();
    }
}
