use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// The x-position group of an interleaved bank pair, following Figure 8 of
/// the paper (top-down view of the two-bank interleaving read state).
///
/// Groups map to bank columns of the floorplan: `A` is the far-left (edge)
/// column — the worst-supplied location and the paper's default worst case —
/// while `B`, `C`, `D` move progressively to the right, with `B` adjacent to
/// the well-supplied centre region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum BankGroup {
    /// Far-left edge column (worst-case supply; the paper's default).
    #[default]
    A,
    /// First column right of `A`, near the centre supply region.
    B,
    /// Second column right of `A`.
    C,
    /// Far-right column (maximum separation from `A`).
    D,
}

impl BankGroup {
    /// All groups in order.
    pub const ALL: [BankGroup; 4] = [BankGroup::A, BankGroup::B, BankGroup::C, BankGroup::D];

    /// Zero-based column offset of the group.
    pub fn column_offset(self) -> usize {
        match self {
            BankGroup::A => 0,
            BankGroup::B => 1,
            BankGroup::C => 2,
            BankGroup::D => 3,
        }
    }

    fn from_char(c: char) -> Option<Self> {
        match c {
            'a' => Some(BankGroup::A),
            'b' => Some(BankGroup::B),
            'c' => Some(BankGroup::C),
            'd' => Some(BankGroup::D),
            _ => None,
        }
    }

    fn to_char(self) -> char {
        match self {
            BankGroup::A => 'a',
            BankGroup::B => 'b',
            BankGroup::C => 'c',
            BankGroup::D => 'd',
        }
    }
}

/// Activity of one DRAM die within a memory state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DieState {
    /// Number of banks actively reading on this die.
    pub active_banks: usize,
    /// Location group of the active banks (`None` means the default
    /// worst-case edge location, equivalent to [`BankGroup::A`]).
    pub group: Option<BankGroup>,
}

impl DieState {
    /// An idle die.
    pub const IDLE: DieState = DieState {
        active_banks: 0,
        group: None,
    };

    /// Creates a die state with `active_banks` active banks at the default
    /// (edge, worst-case) location.
    pub fn active(active_banks: usize) -> Self {
        DieState {
            active_banks,
            group: None,
        }
    }

    /// Creates a die state with an explicit bank-location group.
    pub fn active_at(active_banks: usize, group: BankGroup) -> Self {
        DieState {
            active_banks,
            group: Some(group),
        }
    }

    /// The effective location group (defaults to `A`).
    pub fn effective_group(&self) -> BankGroup {
        self.group.unwrap_or(BankGroup::A)
    }

    /// Whether any bank is active.
    pub fn is_active(&self) -> bool {
        self.active_banks > 0
    }
}

/// A 3D DRAM memory state, written `R1-R2-R3-R4` in the paper, where `R1` is
/// the bottom DRAM die (DRAM1, closest to the supply) and `R4` the top die.
///
/// Each element is the number of active banks, optionally suffixed by a
/// location group letter, e.g. `"0-0-2b-2a"`.
///
/// # Examples
///
/// ```
/// use pi3d_layout::{BankGroup, MemoryState};
///
/// let state: MemoryState = "0-0-2b-2a".parse()?;
/// assert_eq!(state.die(2).active_banks, 2);
/// assert_eq!(state.die(2).group, Some(BankGroup::B));
/// assert_eq!(state.to_string(), "0-0-2b-2a");
/// assert_eq!(state.total_active_banks(), 4);
/// # Ok::<(), pi3d_layout::ParseMemoryStateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoryState {
    dies: Vec<DieState>,
}

impl MemoryState {
    /// Creates a state from explicit per-die activity, bottom die first.
    ///
    /// # Panics
    ///
    /// Panics if `dies` is empty.
    pub fn new(dies: Vec<DieState>) -> Self {
        assert!(!dies.is_empty(), "a memory state needs at least one die");
        MemoryState { dies }
    }

    /// The all-idle state for a stack of `dies` DRAM dies.
    pub fn idle(dies: usize) -> Self {
        MemoryState::new(vec![DieState::IDLE; dies])
    }

    /// The paper's default state `0-0-0-2`: two banks interleaving on the
    /// top die of a four-die stack.
    pub fn default_ddr3() -> Self {
        let mut dies = vec![DieState::IDLE; 4];
        dies[3] = DieState::active(2);
        MemoryState::new(dies)
    }

    /// Number of DRAM dies described.
    pub fn die_count(&self) -> usize {
        self.dies.len()
    }

    /// State of die `index` (0 = bottom).
    ///
    /// # Panics
    ///
    /// Panics if `index >= die_count()`.
    pub fn die(&self, index: usize) -> DieState {
        self.dies[index]
    }

    /// Iterates over die states, bottom die first.
    pub fn dies(&self) -> impl Iterator<Item = DieState> + '_ {
        self.dies.iter().copied()
    }

    /// Total number of active banks across all dies.
    pub fn total_active_banks(&self) -> usize {
        self.dies.iter().map(|d| d.active_banks).sum()
    }

    /// Number of dies with at least one active bank.
    pub fn active_die_count(&self) -> usize {
        self.dies.iter().filter(|d| d.is_active()).count()
    }

    /// Returns a copy with die `index` replaced.
    ///
    /// # Panics
    ///
    /// Panics if `index >= die_count()`.
    pub fn with_die(&self, index: usize, die: DieState) -> Self {
        let mut dies = self.dies.clone();
        dies[index] = die;
        MemoryState { dies }
    }

    /// Whether the two dies of any F2F-bonded pair (dies 0–1 and dies 2–3)
    /// are both active with banks in the same location group — the
    /// "intra-pair overlapping" condition of Section 4.3 that defeats PDN
    /// sharing.
    pub fn has_intra_pair_overlap(&self) -> bool {
        self.dies
            .chunks(2)
            .filter(|pair| pair.len() == 2)
            .any(|pair| {
                pair[0].is_active()
                    && pair[1].is_active()
                    && pair[0].effective_group() == pair[1].effective_group()
            })
    }
}

impl fmt::Display for MemoryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dies.iter().enumerate() {
            if i > 0 {
                f.write_str("-")?;
            }
            write!(f, "{}", d.active_banks)?;
            if let Some(g) = d.group {
                write!(f, "{}", g.to_char())?;
            }
        }
        Ok(())
    }
}

/// Error returned when parsing a [`MemoryState`] from its `R1-R2-R3-R4`
/// string form fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMemoryStateError {
    token: String,
}

impl fmt::Display for ParseMemoryStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid memory-state token {:?} (expected e.g. \"2\" or \"2a\")",
            self.token
        )
    }
}

impl Error for ParseMemoryStateError {}

impl FromStr for MemoryState {
    type Err = ParseMemoryStateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut dies = Vec::new();
        for token in s.split('-') {
            let token = token.trim();
            let bad = || ParseMemoryStateError {
                token: token.to_owned(),
            };
            if token.is_empty() {
                return Err(bad());
            }
            let (digits, suffix) = token.split_at(
                token
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(token.len()),
            );
            let active_banks: usize = digits.parse().map_err(|_| bad())?;
            let group = match suffix {
                "" => None,
                s if s.len() == 1 => {
                    Some(BankGroup::from_char(s.chars().next().expect("len 1")).ok_or_else(bad)?)
                }
                _ => return Err(bad()),
            };
            dies.push(DieState {
                active_banks,
                group,
            });
        }
        if dies.is_empty() {
            return Err(ParseMemoryStateError {
                token: s.to_owned(),
            });
        }
        Ok(MemoryState { dies })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_state() {
        let s: MemoryState = "0-0-0-2".parse().unwrap();
        assert_eq!(s.die_count(), 4);
        assert_eq!(s.die(3).active_banks, 2);
        assert_eq!(s.die(3).group, None);
        assert_eq!(s.total_active_banks(), 2);
        assert_eq!(s.active_die_count(), 1);
    }

    #[test]
    fn parse_grouped_state() {
        let s: MemoryState = "0-2a-0-2a".parse().unwrap();
        assert_eq!(s.die(1).group, Some(BankGroup::A));
        assert_eq!(s.die(3).group, Some(BankGroup::A));
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "0-0-0-2",
            "2-2-2-2",
            "0-0-2b-2a",
            "0-0-2c-2a",
            "1",
            "0-0-2d-2a",
        ] {
            let s: MemoryState = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MemoryState>().is_err());
        assert!("x-0".parse::<MemoryState>().is_err());
        assert!("2e-0".parse::<MemoryState>().is_err());
        assert!("2ab-0".parse::<MemoryState>().is_err());
        assert!("2-".parse::<MemoryState>().is_err());
    }

    #[test]
    fn intra_pair_overlap_detection() {
        // Same group on both dies of the top pair: overlapping.
        let s: MemoryState = "0-0-2a-2a".parse().unwrap();
        assert!(s.has_intra_pair_overlap());
        // Different groups: no overlap.
        let s: MemoryState = "0-0-2b-2a".parse().unwrap();
        assert!(!s.has_intra_pair_overlap());
        // Active banks in *different* pairs never overlap intra-pair.
        let s: MemoryState = "0-2a-0-2a".parse().unwrap();
        assert!(!s.has_intra_pair_overlap());
        // Default (no suffix) counts as group A.
        let s: MemoryState = "0-0-2-2".parse().unwrap();
        assert!(s.has_intra_pair_overlap());
    }

    #[test]
    fn default_state_is_top_die_two_banks() {
        let s = MemoryState::default_ddr3();
        assert_eq!(s.to_string(), "0-0-0-2");
    }

    #[test]
    fn with_die_replaces_one_entry() {
        let s = MemoryState::idle(4).with_die(1, DieState::active_at(2, BankGroup::C));
        assert_eq!(s.to_string(), "0-2c-0-0");
    }

    #[test]
    fn group_column_offsets_are_distinct() {
        let offsets: Vec<_> = BankGroup::ALL.iter().map(|g| g.column_offset()).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn empty_state_panics() {
        let _ = MemoryState::new(vec![]);
    }
}
