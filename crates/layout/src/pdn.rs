use crate::LayoutError;
use std::fmt;

/// Table 8 input ranges for the continuous PDN knobs.
const M2_RANGE: (f64, f64) = (0.10, 0.20);
const M3_RANGE: (f64, f64) = (0.10, 0.40);

/// Which supply net a power-delivery analysis targets.
///
/// The paper's R-Mesh is built for VDD; Section 2.2 notes the ground net
/// "can be analyzed in complementary fashion as well". DRAM PDNs are laid
/// out symmetrically, so by default the VSS net mirrors the VDD usages;
/// [`PdnSpec::with_vss_usage`] overrides that for asymmetric grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PowerNet {
    /// The VDD supply net (the paper's focus).
    #[default]
    Vdd,
    /// The VSS/ground return net.
    Vss,
}

impl fmt::Display for PowerNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PowerNet::Vdd => "VDD",
            PowerNet::Vss => "VSS",
        })
    }
}

/// Power-delivery-network wire sizing: the fraction of each metal layer's
/// area devoted to the VDD net.
///
/// The paper's baseline is 10% on M2 and 20% on M3; Table 8 allows
/// 10–20% (M2) and 10–40% (M3). [`PdnSpec::scaled`] supports the Table 7
/// "1.5x PDN metal usage" style experiments, which intentionally step
/// outside the Table 8 optimization range.
///
/// # Examples
///
/// ```
/// use pi3d_layout::PdnSpec;
///
/// let pdn = PdnSpec::baseline();
/// assert_eq!(pdn.m2_usage(), 0.10);
/// assert_eq!(pdn.m3_usage(), 0.20);
/// let doubled = pdn.scaled(2.0);
/// assert_eq!(doubled.m2_usage(), 0.20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnSpec {
    m2_usage: f64,
    m3_usage: f64,
    /// VSS usages when they differ from the VDD usages.
    vss_usage: Option<(f64, f64)>,
}

impl PdnSpec {
    /// Creates a PDN spec with explicit usages.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::ParameterOutOfRange`] if a usage is outside
    /// the physically meaningful interval `(0, 1]`.
    pub fn new(m2_usage: f64, m3_usage: f64) -> Result<Self, LayoutError> {
        for (name, v) in [("m2_usage", m2_usage), ("m3_usage", m3_usage)] {
            if !(v > 0.0 && v <= 1.0 && v.is_finite()) {
                return Err(LayoutError::ParameterOutOfRange {
                    parameter: name,
                    value: v,
                    min: f64::EPSILON,
                    max: 1.0,
                });
            }
        }
        Ok(PdnSpec {
            m2_usage,
            m3_usage,
            vss_usage: None,
        })
    }

    /// The industry-standard baseline: 10% M2, 20% M3.
    pub fn baseline() -> Self {
        PdnSpec {
            m2_usage: 0.10,
            m3_usage: 0.20,
            vss_usage: None,
        }
    }

    /// Overrides the VSS (ground) net usages; by default the symmetric
    /// DRAM layout gives VSS the same usages as VDD.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::ParameterOutOfRange`] for usages outside
    /// `(0, 1]`.
    pub fn with_vss_usage(mut self, m2: f64, m3: f64) -> Result<Self, LayoutError> {
        for (name, v) in [("vss_m2_usage", m2), ("vss_m3_usage", m3)] {
            if !(v > 0.0 && v <= 1.0 && v.is_finite()) {
                return Err(LayoutError::ParameterOutOfRange {
                    parameter: name,
                    value: v,
                    min: f64::EPSILON,
                    max: 1.0,
                });
            }
        }
        self.vss_usage = Some((m2, m3));
        Ok(self)
    }

    /// Usage fraction of the given net on M2.
    pub fn m2_usage_of(&self, net: PowerNet) -> f64 {
        match (net, self.vss_usage) {
            (PowerNet::Vss, Some((m2, _))) => m2,
            _ => self.m2_usage,
        }
    }

    /// Usage fraction of the given net on M3.
    pub fn m3_usage_of(&self, net: PowerNet) -> f64 {
        match (net, self.vss_usage) {
            (PowerNet::Vss, Some((_, m3))) => m3,
            _ => self.m3_usage,
        }
    }

    /// VDD usage fraction on the mixed signal/power layer (M2).
    pub fn m2_usage(&self) -> f64 {
        self.m2_usage
    }

    /// VDD usage fraction on the power layer (M3).
    pub fn m3_usage(&self) -> f64 {
        self.m3_usage
    }

    /// Returns a spec with both usages multiplied by `factor`, clamped to
    /// the physical maximum of 1.0 (used for the Table 7 "1.5x"/"2x"
    /// metal-usage cases).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        PdnSpec {
            m2_usage: (self.m2_usage * factor).min(1.0),
            m3_usage: (self.m3_usage * factor).min(1.0),
            vss_usage: self
                .vss_usage
                .map(|(a, b)| ((a * factor).min(1.0), (b * factor).min(1.0))),
        }
    }

    /// Whether both usages lie inside the Table 8 optimization ranges
    /// (10–20% for M2, 10–40% for M3).
    pub fn is_in_table8_range(&self) -> bool {
        self.m2_usage >= M2_RANGE.0 - 1e-12
            && self.m2_usage <= M2_RANGE.1 + 1e-12
            && self.m3_usage >= M3_RANGE.0 - 1e-12
            && self.m3_usage <= M3_RANGE.1 + 1e-12
    }

    /// The Table 8 M2 usage range `(min, max)`.
    pub fn m2_range() -> (f64, f64) {
        M2_RANGE
    }

    /// The Table 8 M3 usage range `(min, max)`.
    pub fn m3_range() -> (f64, f64) {
        M3_RANGE
    }
}

impl Default for PdnSpec {
    fn default() -> Self {
        PdnSpec::baseline()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let p = PdnSpec::baseline();
        assert_eq!((p.m2_usage(), p.m3_usage()), (0.10, 0.20));
        assert!(p.is_in_table8_range());
    }

    #[test]
    fn new_rejects_out_of_physical_range() {
        assert!(PdnSpec::new(0.0, 0.2).is_err());
        assert!(PdnSpec::new(0.1, 1.5).is_err());
        assert!(PdnSpec::new(-0.1, 0.2).is_err());
        assert!(PdnSpec::new(f64::NAN, 0.2).is_err());
    }

    #[test]
    fn scaled_clamps_at_unity() {
        let p = PdnSpec::new(0.6, 0.8).unwrap().scaled(2.0);
        assert_eq!(p.m2_usage(), 1.0);
        assert_eq!(p.m3_usage(), 1.0);
    }

    #[test]
    fn scaling_leaves_table8_range_when_too_large() {
        let p = PdnSpec::baseline().scaled(2.0); // 20% / 40%: still in range
        assert!(p.is_in_table8_range());
        let p = PdnSpec::baseline().scaled(3.0); // 30% M2: out of range
        assert!(!p.is_in_table8_range());
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn scaled_rejects_nonpositive() {
        let _ = PdnSpec::baseline().scaled(0.0);
    }

    #[test]
    fn vss_mirrors_vdd_by_default() {
        let p = PdnSpec::baseline();
        assert_eq!(p.m2_usage_of(PowerNet::Vss), p.m2_usage_of(PowerNet::Vdd));
        assert_eq!(p.m3_usage_of(PowerNet::Vss), p.m3_usage_of(PowerNet::Vdd));
    }

    #[test]
    fn vss_override_applies_only_to_vss() {
        let p = PdnSpec::baseline().with_vss_usage(0.12, 0.25).unwrap();
        assert_eq!(p.m2_usage_of(PowerNet::Vdd), 0.10);
        assert_eq!(p.m2_usage_of(PowerNet::Vss), 0.12);
        assert_eq!(p.m3_usage_of(PowerNet::Vss), 0.25);
        // Scaling preserves the override.
        let scaled = p.scaled(2.0);
        assert_eq!(scaled.m2_usage_of(PowerNet::Vss), 0.24);
    }

    #[test]
    fn vss_override_validates_range() {
        assert!(PdnSpec::baseline().with_vss_usage(0.0, 0.2).is_err());
        assert!(PdnSpec::baseline().with_vss_usage(0.1, 1.2).is_err());
    }

    #[test]
    fn power_net_display() {
        assert_eq!(PowerNet::Vdd.to_string(), "VDD");
        assert_eq!(PowerNet::Vss.to_string(), "VSS");
    }
}
