use crate::bonding::BondingStyle;
use crate::stack::StackDesign;
use crate::tsv::TsvPlacement;
use std::fmt;

/// The normalized cost model of the paper's Table 8.
///
/// Each technology option contributes a normalized cost term; all terms are
/// proportional to their inputs except the TSV count, which follows a
/// square-root law (adding TSVs has diminishing manufacturing cost).
///
/// | Term | Input range | Cost range |
/// |------|-------------|------------|
/// | M2 VDD usage | 10–20% | 0.025–0.05 |
/// | M3 VDD usage | 10–40% | 0.025–0.10 |
/// | Power TSV count | 15–480 | 0.078–0.44 |
/// | Dedicated TSVs | yes/no | 0.06 / 0 |
/// | Bonding style | F2B/F2F | 0.045 / 0.06 |
/// | RDL layer | yes/no | 0.05 / 0 |
/// | Wire bonding | yes/no | 0.03 / 0 |
/// | TSV location | C / E / D | 0 / 0.5×TC / 1×TC |
///
/// # Examples
///
/// ```
/// use pi3d_layout::{Benchmark, StackDesign};
///
/// let baseline = StackDesign::baseline(Benchmark::StackedDdr3OffChip);
/// let cost = baseline.cost();
/// assert!((cost.total - 0.29).abs() < 0.07); // paper reports 0.35
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Linear coefficient for metal usage (cost = coeff × usage).
    pub metal_coeff: f64,
    /// Square-root coefficient for the TSV count (cost = coeff × √TC).
    pub tsv_coeff: f64,
    /// Cost of dedicated via-last TSVs.
    pub dedicated_cost: f64,
    /// Cost of F2B bonding.
    pub f2b_cost: f64,
    /// Cost of F2F (+B2B) bonding.
    pub f2f_cost: f64,
    /// Cost of adding an RDL.
    pub rdl_cost: f64,
    /// Cost of backside wire bonding.
    pub wire_bond_cost: f64,
}

impl CostModel {
    /// The paper's Table 8 cost model.
    ///
    /// The metal coefficient 0.25 reproduces both metal rows exactly
    /// (0.25 × 10% = 0.025, 0.25 × 40% = 0.10); the TSV coefficient is
    /// fitted to the stated range endpoints (0.078 at 15, 0.44 at 480).
    pub fn table8() -> Self {
        CostModel {
            metal_coeff: 0.25,
            tsv_coeff: 0.078 / (15.0_f64).sqrt(),
            dedicated_cost: 0.06,
            f2b_cost: 0.045,
            f2f_cost: 0.06,
            rdl_cost: 0.05,
            wire_bond_cost: 0.03,
        }
    }

    /// Evaluates the model on a design.
    pub fn evaluate(&self, design: &StackDesign) -> CostBreakdown {
        let m2 = self.metal_coeff * design.pdn().m2_usage();
        let m3 = self.metal_coeff * design.pdn().m3_usage();
        let tsv_count = self.tsv_coeff * (design.tsv().count() as f64).sqrt();
        let tsv_location = match design.tsv().placement() {
            TsvPlacement::Center => 0.0,
            TsvPlacement::Edge => 0.5 * tsv_count,
            TsvPlacement::Distributed => tsv_count,
        };
        let dedicated = if design.mounting().has_dedicated_tsvs() {
            self.dedicated_cost
        } else {
            0.0
        };
        let bonding = match design.bonding() {
            BondingStyle::F2B => self.f2b_cost,
            BondingStyle::F2F => self.f2f_cost,
        };
        let rdl = if design.rdl().is_enabled() {
            self.rdl_cost
        } else {
            0.0
        };
        let wire_bond = if design.has_wire_bond() {
            self.wire_bond_cost
        } else {
            0.0
        };
        CostBreakdown {
            m2,
            m3,
            tsv_count,
            tsv_location,
            dedicated,
            bonding,
            rdl,
            wire_bond,
            total: m2 + m3 + tsv_count + tsv_location + dedicated + bonding + rdl + wire_bond,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::table8()
    }
}

/// Per-term normalized cost of a design (Table 8 terms).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// M2 VDD usage term.
    pub m2: f64,
    /// M3 VDD usage term.
    pub m3: f64,
    /// Power-TSV count term (√TC law).
    pub tsv_count: f64,
    /// TSV location term (0 / 0.5×TC / 1×TC for C/E/D).
    pub tsv_location: f64,
    /// Dedicated-TSV term.
    pub dedicated: f64,
    /// Bonding-style term.
    pub bonding: f64,
    /// RDL term.
    pub rdl: f64,
    /// Wire-bonding term.
    pub wire_bond: f64,
    /// Sum of all terms.
    pub total: f64,
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost {:.3} (M2 {:.3}, M3 {:.3}, TSV {:.3}+{:.3}, TD {:.3}, BD {:.3}, RDL {:.3}, WB {:.3})",
            self.total,
            self.m2,
            self.m3,
            self.tsv_count,
            self.tsv_location,
            self.dedicated,
            self.bonding,
            self.rdl,
            self.wire_bond
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::pdn::PdnSpec;
    use crate::rdl::{RdlConfig, RdlScope};
    use crate::tsv::TsvConfig;

    #[test]
    fn metal_cost_endpoints_match_table8() {
        let m = CostModel::table8();
        assert!((m.metal_coeff * 0.10 - 0.025).abs() < 1e-12);
        assert!((m.metal_coeff * 0.20 - 0.05).abs() < 1e-12);
        assert!((m.metal_coeff * 0.40 - 0.10).abs() < 1e-12);
    }

    #[test]
    fn tsv_cost_endpoints_match_table8() {
        let m = CostModel::table8();
        let low = m.tsv_coeff * 15.0_f64.sqrt();
        let high = m.tsv_coeff * 480.0_f64.sqrt();
        assert!((low - 0.078).abs() < 1e-3, "low {low}");
        assert!((high - 0.44).abs() < 5e-3, "high {high}");
    }

    #[test]
    fn tsv_cost_is_sublinear() {
        let m = CostModel::table8();
        let c100 = m.tsv_coeff * 100.0_f64.sqrt();
        let c400 = m.tsv_coeff * 400.0_f64.sqrt();
        assert!(c400 < 4.0 * c100);
        assert!((c400 - 2.0 * c100).abs() < 1e-12);
    }

    #[test]
    fn f2f_costs_more_than_f2b() {
        let off = Benchmark::StackedDdr3OffChip;
        let f2b = StackDesign::baseline(off).cost().total;
        let f2f = StackDesign::builder(off)
            .bonding(BondingStyle::F2F)
            .build()
            .unwrap()
            .cost()
            .total;
        assert!(f2f > f2b);
        assert!((f2f - f2b - 0.015).abs() < 1e-12);
    }

    #[test]
    fn every_option_adds_cost() {
        let off = Benchmark::StackedDdr3OffChip;
        let base = StackDesign::baseline(off).cost().total;
        let more = StackDesign::builder(off)
            .pdn(PdnSpec::new(0.2, 0.4).unwrap())
            .tsv(TsvConfig::new(360, crate::tsv::TsvPlacement::Edge).unwrap())
            .bonding(BondingStyle::F2F)
            .rdl(RdlConfig::enabled(RdlScope::AllDies))
            .wire_bond(true)
            .build()
            .unwrap()
            .cost();
        assert!(more.total > base);
        assert!(more.rdl > 0.0 && more.wire_bond > 0.0);
    }

    #[test]
    fn center_tsvs_have_no_location_cost() {
        let d = StackDesign::builder(Benchmark::StackedDdr3OffChip)
            .tsv(TsvConfig::new(33, crate::tsv::TsvPlacement::Center).unwrap())
            .build()
            .unwrap();
        assert_eq!(d.cost().tsv_location, 0.0);
    }

    #[test]
    fn distributed_tsvs_double_the_edge_location_cost() {
        let edge = StackDesign::builder(Benchmark::Hmc)
            .tsv(TsvConfig::new(160, crate::tsv::TsvPlacement::Edge).unwrap())
            .build()
            .unwrap()
            .cost();
        let dist = StackDesign::builder(Benchmark::Hmc)
            .tsv(TsvConfig::new(160, crate::tsv::TsvPlacement::Distributed).unwrap())
            .build()
            .unwrap()
            .cost();
        assert!((dist.tsv_location - 2.0 * edge.tsv_location).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total_is_sum_of_terms() {
        let c = StackDesign::baseline(Benchmark::Hmc).cost();
        let sum = c.m2
            + c.m3
            + c.tsv_count
            + c.tsv_location
            + c.dedicated
            + c.bonding
            + c.rdl
            + c.wire_bond;
        assert!((c.total - sum).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_total() {
        let c = StackDesign::baseline(Benchmark::StackedDdr3OffChip).cost();
        assert!(c.to_string().starts_with("cost "));
    }
}
