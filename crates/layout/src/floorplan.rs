use crate::units::Mm;
use std::fmt;

/// An axis-aligned rectangle in die coordinates (millimetres, origin at the
/// lower-left die corner).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is inverted (`x1 < x0` or `y1 < y0`).
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x1 >= x0 && y1 >= y0, "inverted rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area in mm².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point `(x, y)`.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Whether the point lies inside (boundary inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Area of the intersection with another rectangle (zero if disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.x1.min(other.x1) - self.x0.max(other.x0)).max(0.0);
        let h = (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0.0);
        w * h
    }
}

/// The functional role of a floorplan block, which determines its share of
/// the die's power and therefore its current density in the power map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BlockKind {
    /// DRAM cell array (the bulk of a bank).
    Array,
    /// Row decoder / wordline driver strip.
    RowDecoder,
    /// Column decoder / sense-amplifier strip.
    ColumnDecoder,
    /// Shared periphery: I/O pads, DLL, charge pumps (the centre stripe).
    Periphery,
    /// Logic-die compute core.
    Core,
    /// Logic-die cache / crossbar.
    Uncore,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockKind::Array => "array",
            BlockKind::RowDecoder => "row-decoder",
            BlockKind::ColumnDecoder => "column-decoder",
            BlockKind::Periphery => "periphery",
            BlockKind::Core => "core",
            BlockKind::Uncore => "uncore",
        };
        f.write_str(s)
    }
}

/// One placed floorplan block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name, e.g. `"bank3.array"`.
    pub name: String,
    /// Functional role.
    pub kind: BlockKind,
    /// Placement.
    pub rect: Rect,
    /// Bank index this block belongs to, if any.
    pub bank: Option<usize>,
}

/// A block-level die floorplan.
///
/// Generated parametrically: DRAM dies place `bank_count` banks in two
/// half-die rows separated by a centre periphery stripe (the pad row of a
/// DDR3-style die, where supply current enters); logic dies place a core
/// grid around a central uncore block.
///
/// # Examples
///
/// ```
/// use pi3d_layout::Floorplan;
/// use pi3d_layout::units::Mm;
///
/// let fp = Floorplan::dram(Mm(6.8), Mm(6.7), 8);
/// assert_eq!(fp.bank_count(), 8);
/// assert!(fp.blocks().len() > 8); // banks split into array/decoders
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    width: Mm,
    height: Mm,
    bank_count: usize,
    blocks: Vec<Block>,
}

/// Fraction of the die height taken by the centre periphery stripe.
const PERIPHERY_FRACTION: f64 = 0.10;
/// Fraction of a bank's width taken by the row-decoder strip.
const ROW_DECODER_FRACTION: f64 = 0.12;
/// Fraction of a bank's height taken by the column-decoder strip.
const COL_DECODER_FRACTION: f64 = 0.10;

impl Floorplan {
    /// Generates a DRAM-die floorplan with `bank_count` banks.
    ///
    /// Banks are placed in two horizontal halves (top and bottom) separated
    /// by the centre periphery stripe; each half holds `bank_count / 2`
    /// banks in a row-major grid of at most 8 columns. Each bank is split
    /// into array, row-decoder, and column-decoder blocks.
    ///
    /// # Panics
    ///
    /// Panics if `bank_count` is zero or odd, or if dimensions are not
    /// positive.
    pub fn dram(width: Mm, height: Mm, bank_count: usize) -> Self {
        assert!(
            bank_count > 0 && bank_count.is_multiple_of(2),
            "bank count must be even and nonzero"
        );
        assert!(
            width.value() > 0.0 && height.value() > 0.0,
            "die dimensions must be positive"
        );
        let (w, h) = (width.value(), height.value());
        let stripe_h = h * PERIPHERY_FRACTION;
        let half_h = (h - stripe_h) / 2.0;
        let per_half = bank_count / 2;
        let cols = per_half.min(8);
        let rows = per_half.div_ceil(cols);

        let mut blocks = Vec::new();
        blocks.push(Block {
            name: "periphery".to_owned(),
            kind: BlockKind::Periphery,
            rect: Rect::new(0.0, half_h, w, half_h + stripe_h),
            bank: None,
        });

        let bank_w = w / cols as f64;
        let bank_h = half_h / rows as f64;
        let mut bank_idx = 0;
        for half in 0..2 {
            for r in 0..rows {
                for c in 0..cols {
                    if bank_idx >= bank_count {
                        break;
                    }
                    let y_base = if half == 0 {
                        r as f64 * bank_h
                    } else {
                        half_h + stripe_h + r as f64 * bank_h
                    };
                    let rect = Rect::new(
                        c as f64 * bank_w,
                        y_base,
                        (c + 1) as f64 * bank_w,
                        y_base + bank_h,
                    );
                    Self::push_bank_blocks(&mut blocks, bank_idx, rect);
                    bank_idx += 1;
                }
            }
        }

        Floorplan {
            width,
            height,
            bank_count,
            blocks,
        }
    }

    fn push_bank_blocks(blocks: &mut Vec<Block>, bank: usize, rect: Rect) {
        let rd_w = rect.width() * ROW_DECODER_FRACTION;
        let cd_h = rect.height() * COL_DECODER_FRACTION;
        blocks.push(Block {
            name: format!("bank{bank}.rowdec"),
            kind: BlockKind::RowDecoder,
            rect: Rect::new(rect.x0, rect.y0 + cd_h, rect.x0 + rd_w, rect.y1),
            bank: Some(bank),
        });
        blocks.push(Block {
            name: format!("bank{bank}.coldec"),
            kind: BlockKind::ColumnDecoder,
            rect: Rect::new(rect.x0, rect.y0, rect.x1, rect.y0 + cd_h),
            bank: Some(bank),
        });
        blocks.push(Block {
            name: format!("bank{bank}.array"),
            kind: BlockKind::Array,
            rect: Rect::new(rect.x0 + rd_w, rect.y0 + cd_h, rect.x1, rect.y1),
            bank: Some(bank),
        });
    }

    /// Generates the host-logic (OpenSPARC T2 style) floorplan: an 8-core
    /// grid (two rows of four) around a central uncore stripe.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not positive.
    pub fn logic_t2(width: Mm, height: Mm) -> Self {
        assert!(
            width.value() > 0.0 && height.value() > 0.0,
            "die dimensions must be positive"
        );
        let (w, h) = (width.value(), height.value());
        let stripe_h = h * 0.22;
        let half_h = (h - stripe_h) / 2.0;
        let mut blocks = Vec::new();
        blocks.push(Block {
            name: "crossbar".to_owned(),
            kind: BlockKind::Uncore,
            rect: Rect::new(0.0, half_h, w, half_h + stripe_h),
            bank: None,
        });
        let core_w = w / 4.0;
        for i in 0..8 {
            let (r, c) = (i / 4, i % 4);
            let y0 = if r == 0 { 0.0 } else { half_h + stripe_h };
            blocks.push(Block {
                name: format!("core{i}"),
                kind: BlockKind::Core,
                rect: Rect::new(c as f64 * core_w, y0, (c + 1) as f64 * core_w, y0 + half_h),
                bank: None,
            });
        }
        Floorplan {
            width,
            height,
            bank_count: 0,
            blocks,
        }
    }

    /// Die width.
    pub fn width(&self) -> Mm {
        self.width
    }

    /// Die height.
    pub fn height(&self) -> Mm {
        self.height
    }

    /// Number of DRAM banks (zero for logic dies).
    pub fn bank_count(&self) -> usize {
        self.bank_count
    }

    /// All placed blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Blocks belonging to one bank.
    pub fn bank_blocks(&self, bank: usize) -> impl Iterator<Item = &Block> {
        self.blocks.iter().filter(move |b| b.bank == Some(bank))
    }

    /// Bounding rectangle of one bank, if it exists.
    pub fn bank_rect(&self, bank: usize) -> Option<Rect> {
        let mut it = self.bank_blocks(bank);
        let first = it.next()?.rect;
        Some(it.fold(first, |acc, b| Rect {
            x0: acc.x0.min(b.rect.x0),
            y0: acc.y0.min(b.rect.y0),
            x1: acc.x1.max(b.rect.x1),
            y1: acc.y1.max(b.rect.y1),
        }))
    }

    /// Number of bank columns per half (used to map interleave bank groups).
    pub fn bank_columns(&self) -> usize {
        (self.bank_count / 2).clamp(1, 8)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
        assert!(r.contains(1.0, 2.0));
        assert!(!r.contains(0.9, 2.0));
    }

    #[test]
    fn rect_overlap() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.overlap_area(&b), 1.0);
        let c = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_rect_panics() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn ddr3_floorplan_has_eight_banks() {
        let fp = Floorplan::dram(Mm(6.8), Mm(6.7), 8);
        assert_eq!(fp.bank_count(), 8);
        for b in 0..8 {
            assert!(fp.bank_rect(b).is_some(), "bank {b} missing");
            assert_eq!(fp.bank_blocks(b).count(), 3);
        }
        assert!(fp.bank_rect(8).is_none());
    }

    #[test]
    fn banks_tile_the_non_periphery_area() {
        let fp = Floorplan::dram(Mm(6.8), Mm(6.7), 8);
        let total: f64 = fp.blocks().iter().map(|b| b.rect.area()).sum();
        let die = 6.8 * 6.7;
        assert!(
            (total - die).abs() < 1e-9,
            "blocks cover {total} of {die} mm²"
        );
    }

    #[test]
    fn blocks_do_not_overlap() {
        for nb in [8usize, 16, 32] {
            let fp = Floorplan::dram(Mm(7.2), Mm(6.4), nb);
            let blocks = fp.blocks();
            for i in 0..blocks.len() {
                for j in i + 1..blocks.len() {
                    assert!(
                        blocks[i].rect.overlap_area(&blocks[j].rect) < 1e-9,
                        "{} overlaps {}",
                        blocks[i].name,
                        blocks[j].name
                    );
                }
            }
        }
    }

    #[test]
    fn hmc_floorplan_has_32_banks() {
        let fp = Floorplan::dram(Mm(7.2), Mm(6.4), 32);
        assert_eq!(fp.bank_count(), 32);
        // 16 per half, max 8 columns -> 2 rows per half.
        assert_eq!(fp.bank_columns(), 8);
    }

    #[test]
    fn periphery_stripe_is_in_the_middle() {
        let fp = Floorplan::dram(Mm(6.0), Mm(6.0), 8);
        let stripe = fp
            .blocks()
            .iter()
            .find(|b| b.kind == BlockKind::Periphery)
            .expect("periphery exists");
        let (_, cy) = stripe.rect.center();
        assert!((cy - 3.0).abs() < 1e-9);
    }

    #[test]
    fn logic_floorplan_has_cores_and_uncore() {
        let fp = Floorplan::logic_t2(Mm(9.0), Mm(8.0));
        let cores = fp
            .blocks()
            .iter()
            .filter(|b| b.kind == BlockKind::Core)
            .count();
        let uncore = fp
            .blocks()
            .iter()
            .filter(|b| b.kind == BlockKind::Uncore)
            .count();
        assert_eq!(cores, 8);
        assert_eq!(uncore, 1);
        assert_eq!(fp.bank_count(), 0);
    }

    #[test]
    #[should_panic(expected = "bank count must be even")]
    fn odd_bank_count_panics() {
        let _ = Floorplan::dram(Mm(6.0), Mm(6.0), 7);
    }
}
