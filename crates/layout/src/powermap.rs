use crate::floorplan::{Block, BlockKind, Floorplan, Rect};
use crate::state::{BankGroup, DieState};
use crate::units::MilliWatts;

/// Share of an active bank's power dissipated in the cell array.
const ARRAY_SHARE: f64 = 0.55;
/// Share dissipated in the row-decoder / wordline drivers.
const ROW_DEC_SHARE: f64 = 0.20;
/// Share dissipated in the column decoder / sense amplifiers.
const COL_DEC_SHARE: f64 = 0.25;

/// The DRAM operation a power map models.
///
/// The paper observes nearly identical read and write IR drops (22.5 vs
/// 22.4 mV on the 2D design); the difference comes from where the current
/// is drawn: writes burn more power in the array (write drivers) and less
/// in the I/O output stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpKind {
    /// Burst read (the paper's focus; every experiment defaults to this).
    #[default]
    Read,
    /// Burst write (row write-back).
    Write,
}

impl OpKind {
    /// `(array, row-decoder, column-decoder)` shares of bank power.
    fn bank_shares(self) -> (f64, f64, f64) {
        match self {
            OpKind::Read => (ARRAY_SHARE, ROW_DEC_SHARE, COL_DEC_SHARE),
            OpKind::Write => (0.64, 0.18, 0.18),
        }
    }

    /// Fraction of I/O power drawn in the pad stripe (the rest distributes
    /// across the die).
    fn io_stripe_share(self) -> f64 {
        match self {
            OpKind::Read => 0.5,
            OpKind::Write => 0.35,
        }
    }
}

/// Per-die power model of a DRAM die.
///
/// The paper uses proprietary Samsung/Micron power measurements scaled to a
/// 20nm-class process; this model is the synthetic equivalent (DESIGN.md
/// §2), calibrated against Table 5 of the paper:
///
/// ```text
/// die power = standby + n_active × (bank_static + bank_dynamic × activity)
///                     + io × activity
/// ```
///
/// With the DDR3 defaults, two active banks at 100% I/O activity dissipate
/// ≈220 mW and an idle die 30 mW, matching the paper's 220.5/30 mW split.
///
/// # Examples
///
/// ```
/// use pi3d_layout::PowerModel;
///
/// let model = PowerModel::ddr3();
/// let p = model.die_power(2, 1.0);
/// assert!((p.value() - 220.0).abs() < 1.0);
/// assert_eq!(model.die_power(0, 1.0).value(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Standby (idle) power of a die, mW.
    pub standby_mw: f64,
    /// Activity-independent power of one active bank, mW.
    pub bank_static_mw: f64,
    /// Activity-proportional power of one active bank, mW.
    pub bank_dynamic_mw: f64,
    /// I/O interface power at 100% activity, mW.
    pub io_mw: f64,
}

impl PowerModel {
    /// Power model for 20nm-class stacked DDR3 (calibrated to Table 5).
    pub fn ddr3() -> Self {
        PowerModel {
            standby_mw: 30.0,
            bank_static_mw: 30.0,
            bank_dynamic_mw: 20.0,
            io_mw: 90.0,
        }
    }

    /// Power model for Wide I/O: slow 200 Mbps/pin interface, low I/O
    /// power — the mobile low-power benchmark.
    pub fn wide_io() -> Self {
        PowerModel {
            standby_mw: 15.0,
            bank_static_mw: 10.0,
            bank_dynamic_mw: 6.0,
            io_mw: 24.0,
        }
    }

    /// Power model for HMC: 2500 Mbps/pin across 16 channels, the
    /// highest-power benchmark.
    pub fn hmc() -> Self {
        PowerModel {
            standby_mw: 45.0,
            bank_static_mw: 22.0,
            bank_dynamic_mw: 13.0,
            io_mw: 190.0,
        }
    }

    /// Total power of a die with `active_banks` banks reading at the given
    /// I/O activity (`0.0..=1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `io_activity` is outside `[0, 1]`.
    pub fn die_power(&self, active_banks: usize, io_activity: f64) -> MilliWatts {
        assert!(
            (0.0..=1.0).contains(&io_activity),
            "io_activity must be in [0, 1], got {io_activity}"
        );
        let bank = active_banks as f64 * (self.bank_static_mw + self.bank_dynamic_mw * io_activity);
        let io = if active_banks > 0 {
            self.io_mw * io_activity
        } else {
            0.0
        };
        MilliWatts(self.standby_mw + bank + io)
    }

    /// Rasterizes the power of one die into an `nx × ny` [`PowerMap`]:
    /// standby power spreads uniformly, active-bank power lands in the
    /// bank's array/decoder blocks, and I/O power lands in the centre
    /// periphery stripe.
    ///
    /// # Panics
    ///
    /// Panics if `io_activity` is outside `[0, 1]` or the state requests
    /// more active banks than the floorplan provides columns for.
    pub fn power_map(
        &self,
        floorplan: &Floorplan,
        die: DieState,
        io_activity: f64,
        nx: usize,
        ny: usize,
    ) -> PowerMap {
        self.power_map_op(floorplan, die, io_activity, OpKind::Read, nx, ny)
    }

    /// As [`power_map`](Self::power_map), for an explicit operation kind
    /// (read vs write current distribution).
    ///
    /// # Panics
    ///
    /// As for [`power_map`](Self::power_map).
    pub fn power_map_op(
        &self,
        floorplan: &Floorplan,
        die: DieState,
        io_activity: f64,
        op: OpKind,
        nx: usize,
        ny: usize,
    ) -> PowerMap {
        assert!(
            (0.0..=1.0).contains(&io_activity),
            "io_activity must be in [0, 1]"
        );
        let mut map = PowerMap::zeros(
            nx,
            ny,
            floorplan.width().value(),
            floorplan.height().value(),
        );

        // Standby: uniform across the die.
        map.add_uniform(self.standby_mw);

        if die.is_active() {
            let (array_share, row_share, col_share) = op.bank_shares();
            let per_bank = self.bank_static_mw + self.bank_dynamic_mw * io_activity;
            for bank in active_bank_indices(floorplan, die) {
                for block in floorplan.bank_blocks(bank) {
                    let share = match block.kind {
                        BlockKind::Array => array_share,
                        BlockKind::RowDecoder => row_share,
                        BlockKind::ColumnDecoder => col_share,
                        _ => 0.0,
                    };
                    map.add_block(block, per_bank * share);
                }
            }
            // I/O interface power: the DQ drivers and SSTL terminations sit
            // in the pad stripe, but their supply current is drawn through
            // the whole-die PDN; the remainder is a distributed background.
            let io_power = self.io_mw * io_activity;
            let stripe_share = op.io_stripe_share();
            if let Some(periphery) = floorplan
                .blocks()
                .iter()
                .find(|b| b.kind == BlockKind::Periphery)
            {
                map.add_block(periphery, io_power * stripe_share);
                map.add_uniform(io_power * (1.0 - stripe_share));
            } else {
                map.add_uniform(io_power);
            }
        }

        map
    }
}

/// Maps a die state to concrete bank indices on the floorplan.
///
/// The location group encodes the Figure 8 placement *patterns* of the
/// two-bank interleaving pair. Supply current climbs the stack at the TSV
/// sites (die edges in the baseline), so the centre columns are the
/// worst-supplied locations:
///
/// * `A` — both banks stacked in the centre column (the worst case; the
///   paper's default when no suffix is given),
/// * `B` — both banks in the leftmost column (adjacent to `A`, directly at
///   the edge supply),
/// * `C` — banks split across the leftmost and rightmost columns,
/// * `D` — both banks in the rightmost column (maximum separation from
///   `A`).
///
/// States with more than two active banks fill columns outward from the
/// group's anchor column, alternating halves.
pub(crate) fn active_bank_indices(floorplan: &Floorplan, die: DieState) -> Vec<usize> {
    let nb = floorplan.bank_count();
    let cols = floorplan.bank_columns();
    let per_half = nb / 2;
    let rows = per_half.div_ceil(cols);
    assert!(
        die.active_banks <= nb,
        "state requests {} banks of {}",
        die.active_banks,
        nb
    );
    let bank_at = |half: usize, row: usize, col: usize| half * per_half + row * cols + col;

    let anchor = (cols - 1) / 2; // centre(-left) column
    let group = die.effective_group();

    if die.active_banks <= 2 {
        let pair: [(usize, usize); 2] = match group {
            BankGroup::A => [(0, anchor), (1, anchor)],
            BankGroup::B => [(0, 0), (1, 0)],
            BankGroup::C => [(0, 0), (1, cols - 1)],
            BankGroup::D => [(0, cols - 1), (1, cols - 1)],
        };
        return pair
            .iter()
            .take(die.active_banks)
            .map(|&(half, col)| bank_at(half, 0, col))
            .collect();
    }

    // More than two banks: spiral outward from the anchor column.
    let start = match group {
        BankGroup::A => anchor,
        BankGroup::B => 0,
        BankGroup::C => 0,
        BankGroup::D => cols - 1,
    };
    let mut column_order = vec![start];
    for delta in 1..cols {
        for cand in [
            start as isize - delta as isize,
            start as isize + delta as isize,
        ] {
            if (0..cols as isize).contains(&cand) && !column_order.contains(&(cand as usize)) {
                column_order.push(cand as usize);
            }
        }
    }
    let mut banks = Vec::with_capacity(die.active_banks);
    'fill: for row in 0..rows {
        for &col in &column_order {
            for half in 0..2 {
                let idx = bank_at(half, row, col);
                if idx < nb && !banks.contains(&idx) {
                    banks.push(idx);
                    if banks.len() == die.active_banks {
                        break 'fill;
                    }
                }
            }
        }
    }
    banks
}

/// A rasterized per-die power map: an `nx × ny` grid of cell powers in mW.
///
/// The grid covers the full die area; cell `(0, 0)` is the lower-left
/// corner. Power maps are the current-source input to the R-Mesh engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    nx: usize,
    ny: usize,
    width: f64,
    height: f64,
    cells: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero map over a `width × height` mm die.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or non-positive.
    pub fn zeros(nx: usize, ny: usize, width: f64, height: f64) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be nonzero");
        assert!(
            width > 0.0 && height > 0.0,
            "die dimensions must be positive"
        );
        PowerMap {
            nx,
            ny,
            width,
            height,
            cells: vec![0.0; nx * ny],
        }
    }

    /// Rasterizes the host logic die (OpenSPARC T2): 78% of the power in
    /// the compute cores (hotspots), 22% in the central uncore stripe.
    pub fn logic_t2(floorplan: &Floorplan, total: MilliWatts, nx: usize, ny: usize) -> Self {
        let mut map = PowerMap::zeros(
            nx,
            ny,
            floorplan.width().value(),
            floorplan.height().value(),
        );
        let cores: Vec<&Block> = floorplan
            .blocks()
            .iter()
            .filter(|b| b.kind == BlockKind::Core)
            .collect();
        let uncore: Vec<&Block> = floorplan
            .blocks()
            .iter()
            .filter(|b| b.kind == BlockKind::Uncore)
            .collect();
        let core_power = total.value() * 0.78;
        let uncore_power = total.value() * 0.22;
        for b in &cores {
            map.add_block(b, core_power / cores.len() as f64);
        }
        for b in &uncore {
            map.add_block(b, uncore_power / uncore.len() as f64);
        }
        map
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Die width in millimetres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height in millimetres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Power of cell `(ix, iy)` in mW.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn cell(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "cell out of range");
        self.cells[iy * self.nx + ix]
    }

    /// Total power of the map.
    pub fn total(&self) -> MilliWatts {
        MilliWatts(self.cells.iter().sum())
    }

    /// Adds `power` mW spread uniformly over all cells.
    pub fn add_uniform(&mut self, power: f64) {
        let per_cell = power / self.cells.len() as f64;
        for c in &mut self.cells {
            *c += per_cell;
        }
    }

    /// Adds `power` mW into the cells overlapping `block`, weighted by
    /// overlap area.
    pub fn add_block(&mut self, block: &Block, power: f64) {
        self.add_rect(&block.rect, power);
    }

    /// Adds `power` mW into the cells overlapping `rect`, weighted by
    /// overlap area. Power falling outside the die is dropped.
    pub fn add_rect(&mut self, rect: &Rect, power: f64) {
        let area = rect.area();
        if area <= 0.0 || power == 0.0 {
            return;
        }
        let cw = self.width / self.nx as f64;
        let ch = self.height / self.ny as f64;
        let ix0 = ((rect.x0 / cw).floor().max(0.0)) as usize;
        let ix1 = ((rect.x1 / cw).ceil() as usize).min(self.nx);
        let iy0 = ((rect.y0 / ch).floor().max(0.0)) as usize;
        let iy1 = ((rect.y1 / ch).ceil() as usize).min(self.ny);
        for iy in iy0..iy1 {
            for ix in ix0..ix1 {
                let cell = Rect::new(
                    ix as f64 * cw,
                    iy as f64 * ch,
                    (ix + 1) as f64 * cw,
                    (iy + 1) as f64 * ch,
                );
                let overlap = cell.overlap_area(rect);
                if overlap > 0.0 {
                    self.cells[iy * self.nx + ix] += power * overlap / area;
                }
            }
        }
    }

    /// Iterates over `(ix, iy, mW)` for every cell.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let nx = self.nx;
        self.cells
            .iter()
            .enumerate()
            .map(move |(i, &p)| (i % nx, i / nx, p))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::state::{BankGroup, DieState};
    use crate::units::Mm;

    fn fp() -> Floorplan {
        Floorplan::dram(Mm(6.8), Mm(6.7), 8)
    }

    #[test]
    fn ddr3_die_power_matches_table5_calibration() {
        let m = PowerModel::ddr3();
        // 0-0-0-2 at 100% IO: active die ~220, idle 30, total ~310.
        let active = m.die_power(2, 1.0).value();
        let idle = m.die_power(0, 1.0).value();
        assert!((active - 220.0).abs() < 1.0, "active {active}");
        assert_eq!(idle, 30.0);
        let total = active + 3.0 * idle;
        assert!((total - 310.0).abs() < 1.0, "total {total}");
    }

    #[test]
    fn lower_io_activity_lowers_power() {
        let m = PowerModel::ddr3();
        let p100 = m.die_power(2, 1.0).value();
        let p50 = m.die_power(2, 0.5).value();
        let p25 = m.die_power(2, 0.25).value();
        assert!(p100 > p50 && p50 > p25);
        // 25% activity reduces die power by roughly the paper's 44.7%.
        let reduction = 1.0 - p25 / p100;
        assert!((0.35..0.55).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn power_map_conserves_total_power() {
        let m = PowerModel::ddr3();
        let die = DieState::active(2);
        let map = m.power_map(&fp(), die, 1.0, 40, 40);
        let expect = m.die_power(2, 1.0).value();
        assert!(
            (map.total().value() - expect).abs() < 1e-6,
            "map {} vs model {}",
            map.total().value(),
            expect
        );
    }

    #[test]
    fn idle_die_map_is_uniform() {
        let m = PowerModel::ddr3();
        let map = m.power_map(&fp(), DieState::IDLE, 1.0, 10, 10);
        let per_cell = 30.0 / 100.0;
        for (_, _, p) in map.iter() {
            assert!((p - per_cell).abs() < 1e-12);
        }
    }

    #[test]
    fn active_bank_location_shifts_with_group() {
        let m = PowerModel::ddr3();
        let f = fp();
        let map_a = m.power_map(&f, DieState::active_at(2, BankGroup::A), 1.0, 40, 40);
        let map_d = m.power_map(&f, DieState::active_at(2, BankGroup::D), 1.0, 40, 40);
        // Group A sits in the centre-left column, D in the rightmost one.
        let left_half = |map: &PowerMap| -> f64 {
            map.iter()
                .filter(|&(ix, _, _)| ix < 20)
                .map(|(_, _, p)| p)
                .sum()
        };
        assert!(
            left_half(&map_a) > left_half(&map_d) + 20.0,
            "A left {} vs D left {}",
            left_half(&map_a),
            left_half(&map_d)
        );
    }

    #[test]
    fn group_a_banks_stack_in_the_centre_column() {
        let f = fp();
        let banks = active_bank_indices(&f, DieState::active_at(2, BankGroup::A));
        // 8 banks: 4 columns per half, anchor column (4-1)/2 = 1; the pair
        // stacks bottom and top halves of column 1.
        assert_eq!(banks, vec![1, 5]);
    }

    #[test]
    fn group_b_banks_hug_the_left_edge() {
        let f = fp();
        let banks = active_bank_indices(&f, DieState::active_at(2, BankGroup::B));
        assert_eq!(banks, vec![0, 4]);
    }

    #[test]
    fn group_c_banks_split_across_the_die() {
        let f = fp();
        let banks = active_bank_indices(&f, DieState::active_at(2, BankGroup::C));
        assert_eq!(banks, vec![0, 7]);
    }

    #[test]
    fn group_d_banks_are_rightmost_column() {
        let f = fp();
        let banks = active_bank_indices(&f, DieState::active_at(2, BankGroup::D));
        assert_eq!(banks, vec![3, 7]);
    }

    #[test]
    fn many_active_banks_spill_to_adjacent_columns() {
        let f = fp();
        let banks = active_bank_indices(&f, DieState::active(6));
        assert_eq!(banks.len(), 6);
        let unique: std::collections::HashSet<_> = banks.iter().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn logic_map_concentrates_power_in_cores() {
        let f = Floorplan::logic_t2(Mm(9.0), Mm(8.0));
        let map = PowerMap::logic_t2(&f, MilliWatts(3000.0), 30, 30);
        assert!((map.total().value() - 3000.0).abs() < 1e-6);
        // Centre stripe (uncore) is less dense than core rows.
        let mid_band: f64 = map
            .iter()
            .filter(|&(_, iy, _)| iy == 15)
            .map(|(_, _, p)| p)
            .sum();
        let core_band: f64 = map
            .iter()
            .filter(|&(_, iy, _)| iy == 5)
            .map(|(_, _, p)| p)
            .sum();
        assert!(core_band > mid_band, "core {core_band} vs mid {mid_band}");
    }

    #[test]
    fn add_rect_outside_die_is_dropped() {
        let mut map = PowerMap::zeros(4, 4, 2.0, 2.0);
        map.add_rect(&Rect::new(1.0, 1.0, 3.0, 3.0), 8.0);
        // Half of the rect is off-die; only the on-die overlap is added.
        assert!((map.total().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "io_activity must be in [0, 1]")]
    fn invalid_activity_panics() {
        let _ = PowerModel::ddr3().die_power(1, 1.5);
    }
}
