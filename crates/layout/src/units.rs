//! Typed physical quantities used throughout the workspace.
//!
//! Newtypes keep millimetres from being confused with microns and
//! millivolts from being confused with volts (C-NEWTYPE). Only the
//! operations that are physically meaningful are provided.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw numeric value in the unit named by the type.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Returns the larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// A length in millimetres.
    Mm,
    "mm"
);
quantity!(
    /// A resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// A voltage in volts.
    Volts,
    "V"
);
quantity!(
    /// A voltage in millivolts (the unit IR drop is reported in).
    MilliVolts,
    "mV"
);
quantity!(
    /// A power in milliwatts.
    MilliWatts,
    "mW"
);
quantity!(
    /// A current in amperes.
    Amps,
    "A"
);

impl Volts {
    /// Converts to millivolts.
    pub fn to_millivolts(self) -> MilliVolts {
        MilliVolts(self.0 * 1e3)
    }
}

impl MilliVolts {
    /// Converts to volts.
    pub fn to_volts(self) -> Volts {
        Volts(self.0 * 1e-3)
    }
}

impl MilliWatts {
    /// Current drawn at the given supply voltage (`I = P / V`).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not strictly positive.
    pub fn current_at(self, vdd: Volts) -> Amps {
        assert!(vdd.0 > 0.0, "supply voltage must be positive");
        Amps(self.0 * 1e-3 / vdd.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_lengths() {
        let a = Mm(2.0) + Mm(3.0);
        assert_eq!(a, Mm(5.0));
        assert_eq!(a - Mm(1.0), Mm(4.0));
        assert_eq!(a * 2.0, Mm(10.0));
        assert_eq!(a / 2.0, Mm(2.5));
    }

    #[test]
    fn volt_millivolt_roundtrip() {
        let v = Volts(1.5);
        assert_eq!(v.to_millivolts(), MilliVolts(1500.0));
        assert_eq!(v.to_millivolts().to_volts(), v);
    }

    #[test]
    fn power_to_current() {
        // 150 mW at 1.5 V is 100 mA.
        let i = MilliWatts(150.0).current_at(Volts(1.5));
        assert!((i.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "supply voltage must be positive")]
    fn current_at_zero_volts_panics() {
        let _ = MilliWatts(1.0).current_at(Volts(0.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.2}", MilliVolts(30.034)), "30.03 mV");
        assert_eq!(format!("{}", Mm(6.8)), "6.8 mm");
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(MilliVolts(-3.0).abs(), MilliVolts(3.0));
        assert_eq!(MilliVolts(1.0).max(MilliVolts(2.0)), MilliVolts(2.0));
        assert_eq!(MilliVolts(1.0).min(MilliVolts(2.0)), MilliVolts(1.0));
    }
}
