use std::fmt;

/// Die-to-die bonding style of the DRAM stack (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BondingStyle {
    /// Face-to-back: every die faces up, TSVs connect each die's top metal
    /// to the next die's backside. The industry default.
    #[default]
    F2B,
    /// Face-to-face + back-to-back: dies 1–2 and 3–4 are bonded face to
    /// face through dense micro-via arrays (sharing their PDNs), and the
    /// pairs connect back-to-back through PG TSVs.
    F2F,
}

impl BondingStyle {
    /// Whether the style pairs dies face-to-face (enabling PDN sharing).
    pub fn is_f2f(self) -> bool {
        matches!(self, BondingStyle::F2F)
    }

    /// Abbreviation used in the paper's tables.
    pub fn abbreviation(self) -> &'static str {
        match self {
            BondingStyle::F2B => "F2B",
            BondingStyle::F2F => "F2F",
        }
    }
}

impl fmt::Display for BondingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// How the DRAM stack connects to the power supply (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mounting {
    /// Stand-alone chip: the bottom DRAM die sits directly on package
    /// balls. The DRAM PDN sees only its own noise.
    #[default]
    OffChip,
    /// Mounted on a host logic die (OpenSPARC T2): supply current flows
    /// through the logic die's PDN, coupling its noise into the DRAM —
    /// unless `dedicated_tsvs` punch a private via-last supply path
    /// through the logic die (Section 4.1).
    OnChip {
        /// Whether dedicated power TSVs decouple the DRAM supply from the
        /// logic PDN.
        dedicated_tsvs: bool,
    },
}

impl Mounting {
    /// Whether the stack is mounted on a logic die.
    pub fn is_on_chip(self) -> bool {
        matches!(self, Mounting::OnChip { .. })
    }

    /// Whether dedicated power TSVs are present (always `false` off-chip;
    /// the paper's off-chip rows with "dedicated TSV = yes" refer to the
    /// supply being inherently direct).
    pub fn has_dedicated_tsvs(self) -> bool {
        matches!(
            self,
            Mounting::OnChip {
                dedicated_tsvs: true
            }
        )
    }
}

impl fmt::Display for Mounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mounting::OffChip => f.write_str("off-chip"),
            Mounting::OnChip {
                dedicated_tsvs: true,
            } => f.write_str("on-chip (dedicated TSVs)"),
            Mounting::OnChip {
                dedicated_tsvs: false,
            } => f.write_str("on-chip"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn f2f_detection() {
        assert!(!BondingStyle::F2B.is_f2f());
        assert!(BondingStyle::F2F.is_f2f());
    }

    #[test]
    fn defaults_match_industry_baseline() {
        assert_eq!(BondingStyle::default(), BondingStyle::F2B);
        assert_eq!(Mounting::default(), Mounting::OffChip);
    }

    #[test]
    fn mounting_flags() {
        assert!(!Mounting::OffChip.is_on_chip());
        assert!(!Mounting::OffChip.has_dedicated_tsvs());
        assert!(Mounting::OnChip {
            dedicated_tsvs: false
        }
        .is_on_chip());
        assert!(Mounting::OnChip {
            dedicated_tsvs: true
        }
        .has_dedicated_tsvs());
    }

    #[test]
    fn display_forms() {
        assert_eq!(BondingStyle::F2F.to_string(), "F2F");
        assert_eq!(Mounting::OffChip.to_string(), "off-chip");
        assert_eq!(
            Mounting::OnChip {
                dedicated_tsvs: true
            }
            .to_string(),
            "on-chip (dedicated TSVs)"
        );
    }
}
