use crate::units::{Ohms, Volts};

/// Preferred routing direction of a metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteDirection {
    /// Straps run parallel to the x axis.
    Horizontal,
    /// Straps run parallel to the y axis.
    Vertical,
}

impl RouteDirection {
    /// Returns the perpendicular direction.
    pub fn orthogonal(self) -> Self {
        match self {
            RouteDirection::Horizontal => RouteDirection::Vertical,
            RouteDirection::Vertical => RouteDirection::Horizontal,
        }
    }
}

/// One PDN metal layer of a die, as consumed by the R-Mesh extractor.
///
/// `sheet_resistance` is the bare per-square resistance of the layer;
/// the fraction of the layer devoted to the VDD net (the paper's
/// "metal usage") scales the effective conductance at mesh-build time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalLayer {
    /// Layer name, e.g. `"M2"`.
    pub name: &'static str,
    /// Per-square resistance of the bare metal.
    pub sheet_resistance: Ohms,
    /// Preferred routing direction.
    pub direction: RouteDirection,
}

/// Process-technology description: layer resistances and the resistances of
/// every vertical-connection element in the package.
///
/// Values are representative of a 20nm-class DRAM process and a 28nm logic
/// process; the paper's absolute numbers come from proprietary Samsung
/// data, so these are calibrated so that the 2D DDR3 single-bank
/// interleaving read lands near the paper's 22.5 mV (see DESIGN.md §2).
///
/// # Examples
///
/// ```
/// use pi3d_layout::Technology;
///
/// let tech = Technology::dram_20nm();
/// assert_eq!(tech.vdd().value(), 1.5);
/// assert!(tech.rdl_sheet_resistance().value() < tech.m3_sheet_resistance().value());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    vdd: Volts,
    m2_sheet_r: Ohms,
    m3_sheet_r: Ohms,
    rdl_sheet_r: Ohms,
    /// Effective inter-layer via resistance per mesh cell (vias in parallel).
    via_cell_r: Ohms,
    tsv_r: Ohms,
    dedicated_tsv_r: Ohms,
    f2f_via_r: Ohms,
    b2b_pad_r: Ohms,
    bump_r: Ohms,
    ball_r: Ohms,
    wirebond_r: Ohms,
    /// Lateral series penalty per millimetre of C4-to-TSV misalignment.
    misalign_r_per_mm: Ohms,
}

impl Technology {
    /// Technology model for a 20nm-class DRAM die (three metal layers: M1
    /// signal, M2 mixed, M3 power — only M2/M3 carry the VDD PDN).
    pub fn dram_20nm() -> Self {
        Technology {
            vdd: Volts(1.5),
            m2_sheet_r: Ohms(0.85),
            m3_sheet_r: Ohms(0.26),
            rdl_sheet_r: Ohms(0.12),
            via_cell_r: Ohms(0.08),
            tsv_r: Ohms(0.045),
            dedicated_tsv_r: Ohms(0.020),
            f2f_via_r: Ohms(0.04),
            b2b_pad_r: Ohms(0.05),
            bump_r: Ohms(0.010),
            ball_r: Ohms(0.005),
            wirebond_r: Ohms(0.030),
            misalign_r_per_mm: Ohms(3.5),
        }
    }

    /// Technology model for the 28nm OpenSPARC T2 host logic die (coarse
    /// two-layer global PDN abstraction of its upper metal stack).
    pub fn logic_28nm() -> Self {
        Technology {
            vdd: Volts(1.5),
            m2_sheet_r: Ohms(0.46),
            m3_sheet_r: Ohms(0.155),
            rdl_sheet_r: Ohms(0.12),
            via_cell_r: Ohms(0.08),
            tsv_r: Ohms(0.045),
            dedicated_tsv_r: Ohms(0.020),
            f2f_via_r: Ohms(0.04),
            b2b_pad_r: Ohms(0.05),
            bump_r: Ohms(0.010),
            ball_r: Ohms(0.005),
            wirebond_r: Ohms(0.030),
            misalign_r_per_mm: Ohms(3.5),
        }
    }

    /// Supply voltage.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Overrides the supply voltage (Wide I/O runs at 1.2 V).
    pub fn with_vdd(mut self, vdd: Volts) -> Self {
        assert!(vdd.value() > 0.0, "vdd must be positive");
        self.vdd = vdd;
        self
    }

    /// Sheet resistance of the mixed signal/power layer (M2).
    pub fn m2_sheet_resistance(&self) -> Ohms {
        self.m2_sheet_r
    }

    /// Sheet resistance of the power layer (M3).
    pub fn m3_sheet_resistance(&self) -> Ohms {
        self.m3_sheet_r
    }

    /// Sheet resistance of the thick backside redistribution layer.
    pub fn rdl_sheet_resistance(&self) -> Ohms {
        self.rdl_sheet_r
    }

    /// Effective M2–M3 via resistance per mesh cell.
    pub fn via_cell_resistance(&self) -> Ohms {
        self.via_cell_r
    }

    /// Resistance of one regular (via-middle) power TSV.
    pub fn tsv_resistance(&self) -> Ohms {
        self.tsv_r
    }

    /// Resistance of one dedicated via-last TSV through the logic die.
    pub fn dedicated_tsv_resistance(&self) -> Ohms {
        self.dedicated_tsv_r
    }

    /// Resistance of one face-to-face micro-via.
    pub fn f2f_via_resistance(&self) -> Ohms {
        self.f2f_via_r
    }

    /// Resistance of one back-to-back bonding pad connection.
    pub fn b2b_pad_resistance(&self) -> Ohms {
        self.b2b_pad_r
    }

    /// Resistance of one C4 bump.
    pub fn bump_resistance(&self) -> Ohms {
        self.bump_r
    }

    /// Resistance of one package ball (off-chip mounting).
    pub fn ball_resistance(&self) -> Ohms {
        self.ball_r
    }

    /// Resistance of one backside bonding wire (pad + wire).
    pub fn wirebond_resistance(&self) -> Ohms {
        self.wirebond_r
    }

    /// Lateral series penalty per millimetre of C4-to-TSV misalignment.
    pub fn misalignment_resistance_per_mm(&self) -> Ohms {
        self.misalign_r_per_mm
    }

    /// The two PDN metal layers of a DRAM die, bottom-up: M2 (vertical
    /// straps), M3 (horizontal straps).
    pub fn dram_pdn_layers(&self) -> [MetalLayer; 2] {
        [
            MetalLayer {
                name: "M2",
                sheet_resistance: self.m2_sheet_r,
                direction: RouteDirection::Vertical,
            },
            MetalLayer {
                name: "M3",
                sheet_resistance: self.m3_sheet_r,
                direction: RouteDirection::Horizontal,
            },
        ]
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::dram_20nm()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn dram_tech_layer_ordering() {
        let t = Technology::dram_20nm();
        let [m2, m3] = t.dram_pdn_layers();
        assert_eq!(m2.name, "M2");
        assert_eq!(m3.name, "M3");
        // Power layer (M3) is thicker, hence less resistive.
        assert!(m3.sheet_resistance.value() < m2.sheet_resistance.value());
        // Orthogonal routing directions form a grid.
        assert_eq!(m2.direction.orthogonal(), m3.direction);
    }

    #[test]
    fn rdl_is_least_resistive_layer() {
        let t = Technology::dram_20nm();
        assert!(t.rdl_sheet_resistance().value() < t.m3_sheet_resistance().value());
    }

    #[test]
    fn dedicated_tsv_beats_regular_tsv() {
        let t = Technology::dram_20nm();
        assert!(t.dedicated_tsv_resistance().value() < t.tsv_resistance().value());
    }

    #[test]
    fn with_vdd_overrides_supply() {
        let t = Technology::dram_20nm().with_vdd(Volts(1.2));
        assert_eq!(t.vdd(), Volts(1.2));
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn with_nonpositive_vdd_panics() {
        let _ = Technology::dram_20nm().with_vdd(Volts(-1.0));
    }

    #[test]
    fn default_is_dram() {
        assert_eq!(Technology::default(), Technology::dram_20nm());
    }

    #[test]
    fn logic_tech_is_less_resistive_than_dram() {
        let logic = Technology::logic_28nm();
        let dram = Technology::dram_20nm();
        assert!(logic.m3_sheet_resistance().value() < dram.m3_sheet_resistance().value());
    }
}
