use crate::LayoutError;
use std::fmt;

/// Where the power/ground TSVs sit on the die, following Section 3.3 and
/// Table 8 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TsvPlacement {
    /// All TSVs grouped at the die centre (lowest cost, highest IR drop —
    /// the JEDEC Wide I/O style).
    Center,
    /// TSV columns along the left and right die edges (the stacked-DDR3
    /// style of Kang et al.; shortens supply paths but needs keep-out
    /// zones).
    #[default]
    Edge,
    /// TSVs spread uniformly between banks (the HMC style; highest cost).
    Distributed,
}

impl fmt::Display for TsvPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TsvPlacement::Center => "center",
            TsvPlacement::Edge => "edge",
            TsvPlacement::Distributed => "distributed",
        })
    }
}

impl TsvPlacement {
    /// One-letter abbreviation used in the paper's Table 9 (`C`/`E`/`D`).
    pub fn abbreviation(self) -> char {
        match self {
            TsvPlacement::Center => 'C',
            TsvPlacement::Edge => 'E',
            TsvPlacement::Distributed => 'D',
        }
    }
}

/// Table 8 range for the power-TSV count.
const TSV_COUNT_RANGE: (usize, usize) = (15, 480);

/// Power-TSV configuration: count, placement style, and whether TSV
/// positions were optimized to sit near the logic die's C4 bumps
/// (Section 3.2's alignment optimization).
///
/// # Examples
///
/// ```
/// use pi3d_layout::{TsvConfig, TsvPlacement};
///
/// # fn main() -> Result<(), pi3d_layout::LayoutError> {
/// let tsv = TsvConfig::new(33, TsvPlacement::Edge)?;
/// let positions = tsv.positions(6.8, 6.7);
/// assert_eq!(positions.len(), 33);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvConfig {
    count: usize,
    placement: TsvPlacement,
    aligned: bool,
}

impl TsvConfig {
    /// Creates a TSV configuration with the default (non-optimized, uniform
    /// pitch) alignment.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::ParameterOutOfRange`] if `count` is outside
    /// the Table 8 range of 15–480.
    pub fn new(count: usize, placement: TsvPlacement) -> Result<Self, LayoutError> {
        if !(TSV_COUNT_RANGE.0..=TSV_COUNT_RANGE.1).contains(&count) {
            return Err(LayoutError::ParameterOutOfRange {
                parameter: "tsv_count",
                value: count as f64,
                min: TSV_COUNT_RANGE.0 as f64,
                max: TSV_COUNT_RANGE.1 as f64,
            });
        }
        Ok(TsvConfig {
            count,
            placement,
            aligned: false,
        })
    }

    /// The paper's baseline for stacked DDR3: 33 edge TSVs, uniform pitch.
    pub fn baseline_ddr3() -> Self {
        TsvConfig {
            count: 33,
            placement: TsvPlacement::Edge,
            aligned: false,
        }
    }

    /// Number of power TSVs per die-to-die interface.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Placement style.
    pub fn placement(&self) -> TsvPlacement {
        self.placement
    }

    /// Whether TSVs are placed near C4 bumps (alignment-optimized).
    pub fn is_aligned(&self) -> bool {
        self.aligned
    }

    /// Returns a copy with C4-alignment optimization enabled or disabled.
    pub fn with_alignment(mut self, aligned: bool) -> Self {
        self.aligned = aligned;
        self
    }

    /// Returns a copy with a different count.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_count(self, count: usize) -> Result<Self, LayoutError> {
        let mut cfg = TsvConfig::new(count, self.placement)?;
        cfg.aligned = self.aligned;
        Ok(cfg)
    }

    /// The Table 8 TSV count range `(min, max)`.
    pub fn count_range() -> (usize, usize) {
        TSV_COUNT_RANGE
    }

    /// Computes TSV positions on a `width × height` mm die.
    ///
    /// * `Edge` — two columns inset 3% from the left and right edges,
    ///   spread uniformly in y.
    /// * `Center` — a near-square grid inside the central 30% × 30% box.
    /// * `Distributed` — a near-square grid over the whole die with a 5%
    ///   margin.
    pub fn positions(&self, width: f64, height: f64) -> Vec<(f64, f64)> {
        match self.placement {
            TsvPlacement::Edge => {
                let inset = width * 0.03;
                let per_col = self.count / 2;
                let extra = self.count % 2;
                let mut pts = Vec::with_capacity(self.count);
                for (col, n) in [(inset, per_col + extra), (width - inset, per_col)] {
                    for i in 0..n {
                        let y = height * (i as f64 + 0.5) / n as f64;
                        pts.push((col, y));
                    }
                }
                pts
            }
            TsvPlacement::Center => {
                let bx0 = width * 0.35;
                let by0 = height * 0.35;
                grid_points(self.count, bx0, by0, width * 0.30, height * 0.30)
            }
            TsvPlacement::Distributed => {
                let mx = width * 0.05;
                let my = height * 0.05;
                grid_points(self.count, mx, my, width - 2.0 * mx, height - 2.0 * my)
            }
        }
    }

    /// Computes the average distance (mm) from each TSV to its nearest C4
    /// bump for a given bump grid, the quantity the paper's alignment
    /// optimization minimizes. With alignment enabled the distance
    /// collapses to a small residual (TSVs are moved next to bumps).
    pub fn average_bump_distance(&self, tsvs: &[(f64, f64)], bumps: &[(f64, f64)]) -> f64 {
        if self.aligned {
            return ALIGNED_RESIDUAL_MM;
        }
        if tsvs.is_empty() || bumps.is_empty() {
            return 0.0;
        }
        let total: f64 = tsvs
            .iter()
            .map(|&(x, y)| {
                bumps
                    .iter()
                    .map(|&(bx, by)| ((x - bx).powi(2) + (y - by).powi(2)).sqrt())
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        total / tsvs.len() as f64
    }
}

/// Residual C4-to-TSV distance after alignment optimization (mm).
const ALIGNED_RESIDUAL_MM: f64 = 0.02;

impl Default for TsvConfig {
    fn default() -> Self {
        TsvConfig::baseline_ddr3()
    }
}

/// Lays `count` points out in a near-square grid inside the box
/// `(x0, y0, x0+w, y0+h)`.
fn grid_points(count: usize, x0: f64, y0: f64, w: f64, h: f64) -> Vec<(f64, f64)> {
    if count == 0 {
        return Vec::new();
    }
    let cols = (count as f64).sqrt().ceil() as usize;
    let rows = count.div_ceil(cols);
    let mut pts = Vec::with_capacity(count);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if pts.len() == count {
                break 'outer;
            }
            let x = x0 + w * (c as f64 + 0.5) / cols as f64;
            let y = y0 + h * (r as f64 + 0.5) / rows as f64;
            pts.push((x, y));
        }
    }
    pts
}

/// Generates the C4 bump grid of a logic die (or the package-ball grid of an
/// off-chip stack): a uniform array at the given pitch covering the die.
///
/// # Panics
///
/// Panics if any argument is not strictly positive.
pub fn bump_grid(width: f64, height: f64, pitch_mm: f64) -> Vec<(f64, f64)> {
    assert!(width > 0.0 && height > 0.0 && pitch_mm > 0.0);
    let nx = ((width / pitch_mm).floor() as usize).max(1);
    let ny = ((height / pitch_mm).floor() as usize).max(1);
    let mut pts = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            pts.push((
                width * (i as f64 + 0.5) / nx as f64,
                height * (j as f64 + 0.5) / ny as f64,
            ));
        }
    }
    pts
}

/// Pitch of the power-assigned C4 bumps (only a fraction of the full C4
/// array carries VDD), in millimetres.
pub const C4_PITCH_MM: f64 = 2.4;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn count_range_enforced() {
        assert!(TsvConfig::new(14, TsvPlacement::Edge).is_err());
        assert!(TsvConfig::new(481, TsvPlacement::Edge).is_err());
        assert!(TsvConfig::new(15, TsvPlacement::Edge).is_ok());
        assert!(TsvConfig::new(480, TsvPlacement::Edge).is_ok());
    }

    #[test]
    fn edge_positions_hug_the_edges() {
        let cfg = TsvConfig::new(20, TsvPlacement::Edge).unwrap();
        let pts = cfg.positions(6.8, 6.7);
        assert_eq!(pts.len(), 20);
        for &(x, _) in &pts {
            assert!(!(0.5..=6.3).contains(&x), "edge TSV at x={x}");
        }
    }

    #[test]
    fn center_positions_stay_in_central_box() {
        let cfg = TsvConfig::new(33, TsvPlacement::Center).unwrap();
        for (x, y) in cfg.positions(6.8, 6.7) {
            assert!(x > 6.8 * 0.3 && x < 6.8 * 0.7, "x={x}");
            assert!(y > 6.7 * 0.3 && y < 6.7 * 0.7, "y={y}");
        }
    }

    #[test]
    fn distributed_positions_cover_the_die() {
        let cfg = TsvConfig::new(160, TsvPlacement::Distributed).unwrap();
        let pts = cfg.positions(7.2, 6.4);
        assert_eq!(pts.len(), 160);
        let min_x = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let max_x = pts.iter().map(|p| p.0).fold(0.0, f64::max);
        assert!(min_x < 1.0 && max_x > 6.0, "spread {min_x}..{max_x}");
    }

    #[test]
    fn odd_count_edge_placement_keeps_all_tsvs() {
        let cfg = TsvConfig::new(33, TsvPlacement::Edge).unwrap();
        assert_eq!(cfg.positions(6.8, 6.7).len(), 33);
    }

    #[test]
    fn alignment_reduces_average_bump_distance() {
        let bumps = bump_grid(9.0, 8.0, C4_PITCH_MM);
        let cfg = TsvConfig::new(33, TsvPlacement::Edge).unwrap();
        let pts = cfg.positions(6.8, 6.7);
        let misaligned = cfg.average_bump_distance(&pts, &bumps);
        let aligned = cfg.with_alignment(true).average_bump_distance(&pts, &bumps);
        assert!(
            aligned < misaligned,
            "aligned {aligned} !< misaligned {misaligned}"
        );
        assert!(
            misaligned > 0.05,
            "uniform pitch should misalign: {misaligned}"
        );
    }

    #[test]
    fn bump_grid_covers_the_die() {
        let bumps = bump_grid(9.0, 8.0, C4_PITCH_MM);
        // Power C4s are sparse (2.4 mm pitch on a 9x8 mm die -> 3x3).
        assert_eq!(bumps.len(), 9, "got {} bumps", bumps.len());
        let (min_x, max_x) = bumps
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(x, _)| {
                (lo.min(x), hi.max(x))
            });
        assert!(min_x < 2.0 && max_x > 7.0, "spread {min_x}..{max_x}");
    }

    #[test]
    fn placement_abbreviations_match_table9() {
        assert_eq!(TsvPlacement::Center.abbreviation(), 'C');
        assert_eq!(TsvPlacement::Edge.abbreviation(), 'E');
        assert_eq!(TsvPlacement::Distributed.abbreviation(), 'D');
    }

    #[test]
    fn default_is_paper_baseline() {
        let t = TsvConfig::default();
        assert_eq!(t.count(), 33);
        assert_eq!(t.placement(), TsvPlacement::Edge);
        assert!(!t.is_aligned());
    }
}
