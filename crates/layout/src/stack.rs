use crate::benchmarks::Benchmark;
use crate::bonding::{BondingStyle, Mounting};
use crate::cost::{CostBreakdown, CostModel};
use crate::floorplan::Floorplan;
use crate::pdn::PdnSpec;
use crate::powermap::PowerModel;
use crate::rdl::RdlConfig;
use crate::tech::Technology;
use crate::tsv::{TsvConfig, TsvPlacement};
use crate::LayoutError;

/// A complete 3D DRAM stack design: one benchmark plus every design,
/// packaging, and wiring option the paper co-optimizes.
///
/// Construct with [`StackDesign::baseline`] (the industry-standard
/// configurations of Table 9) or through [`StackDesign::builder`] for
/// arbitrary option combinations.
///
/// # Examples
///
/// ```
/// use pi3d_layout::{Benchmark, BondingStyle, StackDesign};
///
/// # fn main() -> Result<(), pi3d_layout::LayoutError> {
/// let design = StackDesign::builder(Benchmark::StackedDdr3OffChip)
///     .bonding(BondingStyle::F2F)
///     .wire_bond(true)
///     .build()?;
/// assert!(design.bonding().is_f2f());
/// assert!(design.has_wire_bond());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StackDesign {
    benchmark: Benchmark,
    mounting: Mounting,
    pdn: PdnSpec,
    tsv: TsvConfig,
    bonding: BondingStyle,
    rdl: RdlConfig,
    wire_bond: bool,
    dram_dies: usize,
    dram_tech: Technology,
    logic_tech: Technology,
}

impl StackDesign {
    /// Starts a builder pre-populated with the benchmark's baseline options.
    pub fn builder(benchmark: Benchmark) -> StackDesignBuilder {
        StackDesignBuilder::new(benchmark)
    }

    /// The industry-standard baseline design for a benchmark, matching the
    /// "Baseline" rows of the paper's Table 9:
    ///
    /// * stacked DDR3 (both mountings): 10%/20% usage, 33 edge TSVs, F2B;
    ///   the on-chip variant adds dedicated TSVs;
    /// * Wide I/O: 160 edge TSVs (fixed by spec) with RDL, dedicated TSVs;
    /// * HMC: 384 edge TSVs, dedicated TSVs.
    pub fn baseline(benchmark: Benchmark) -> Self {
        StackDesignBuilder::new(benchmark)
            .build()
            .expect("baselines are valid by construction")
    }

    /// The benchmark this design instantiates.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// How the stack connects to the supply.
    pub fn mounting(&self) -> Mounting {
        self.mounting
    }

    /// PDN wire sizing.
    pub fn pdn(&self) -> PdnSpec {
        self.pdn
    }

    /// Power-TSV configuration.
    pub fn tsv(&self) -> TsvConfig {
        self.tsv
    }

    /// Die bonding style.
    pub fn bonding(&self) -> BondingStyle {
        self.bonding
    }

    /// Backside RDL configuration.
    pub fn rdl(&self) -> RdlConfig {
        self.rdl
    }

    /// Whether backside wire bonding is present.
    pub fn has_wire_bond(&self) -> bool {
        self.wire_bond
    }

    /// DRAM process technology.
    pub fn dram_tech(&self) -> &Technology {
        &self.dram_tech
    }

    /// Logic process technology.
    pub fn logic_tech(&self) -> &Technology {
        &self.logic_tech
    }

    /// Number of stacked DRAM dies (the benchmark's four unless overridden
    /// for 2D-calibration experiments).
    pub fn dram_die_count(&self) -> usize {
        self.dram_dies
    }

    /// Banks per DRAM die.
    pub fn banks_per_die(&self) -> usize {
        self.benchmark.spec().banks_per_die
    }

    /// Generates the DRAM-die floorplan for this design.
    pub fn dram_floorplan(&self) -> Floorplan {
        let spec = self.benchmark.spec();
        Floorplan::dram(spec.dram_width, spec.dram_height, spec.banks_per_die)
    }

    /// Generates the logic-die floorplan, if the stack is mounted on one.
    pub fn logic_floorplan(&self) -> Option<Floorplan> {
        self.benchmark
            .spec()
            .logic_size
            .map(|(w, h)| Floorplan::logic_t2(w, h))
    }

    /// The per-die power model for this benchmark.
    pub fn power_model(&self) -> PowerModel {
        self.benchmark.power_model()
    }

    /// Evaluates the Table 8 cost model on this design.
    pub fn cost(&self) -> CostBreakdown {
        CostModel::table8().evaluate(self)
    }

    /// Validates benchmark-specific option constraints (Section 6.1):
    ///
    /// * Wide I/O power-TSV count is fixed at 160 by the JEDEC spec;
    /// * distributed TSVs are an HMC-only option; stacked DDR3 and Wide I/O
    ///   allow centre or edge placement only;
    /// * HMC needs at least 160 power TSVs for supply current;
    /// * dedicated TSVs require on-chip mounting.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidCombination`] describing the first
    /// violated rule.
    pub fn validate(&self) -> Result<(), LayoutError> {
        let invalid = |reason: String| Err(LayoutError::InvalidCombination { reason });
        match self.benchmark {
            Benchmark::WideIo => {
                if self.tsv.count() != 160 {
                    return invalid(format!(
                        "Wide I/O fixes the power-TSV count at 160 (got {})",
                        self.tsv.count()
                    ));
                }
                if self.tsv.placement() == TsvPlacement::Distributed {
                    return invalid("Wide I/O allows centre or edge TSVs only".into());
                }
                if !self.mounting.is_on_chip() {
                    return invalid("Wide I/O is always mounted on a logic die".into());
                }
            }
            Benchmark::StackedDdr3OffChip | Benchmark::StackedDdr3OnChip => {
                if self.tsv.placement() == TsvPlacement::Distributed {
                    return invalid("stacked DDR3 allows centre or edge TSVs only".into());
                }
            }
            Benchmark::Hmc => {
                if self.tsv.count() < 160 {
                    return invalid(format!(
                        "HMC needs at least 160 power TSVs for supply current (got {})",
                        self.tsv.count()
                    ));
                }
                if !self.mounting.is_on_chip() {
                    return invalid("HMC is always mounted on its control logic die".into());
                }
            }
        }
        if self.mounting.has_dedicated_tsvs() && !self.mounting.is_on_chip() {
            return invalid("dedicated TSVs require on-chip mounting".into());
        }
        if matches!(self.benchmark, Benchmark::StackedDdr3OffChip) && self.mounting.is_on_chip() {
            return invalid("the off-chip DDR3 benchmark cannot be mounted on logic".into());
        }
        if matches!(self.benchmark, Benchmark::StackedDdr3OnChip) && !self.mounting.is_on_chip() {
            return invalid("the on-chip DDR3 benchmark must be mounted on logic".into());
        }
        Ok(())
    }
}

/// Builder for [`StackDesign`], seeded with a benchmark's baseline options.
#[derive(Debug, Clone)]
pub struct StackDesignBuilder {
    design: StackDesign,
}

impl StackDesignBuilder {
    fn new(benchmark: Benchmark) -> Self {
        let vdd = benchmark.spec().vdd;
        let dram_tech = Technology::dram_20nm().with_vdd(vdd);
        let logic_tech = Technology::logic_28nm().with_vdd(vdd);
        let (mounting, tsv, rdl) = match benchmark {
            Benchmark::StackedDdr3OffChip => (
                Mounting::OffChip,
                TsvConfig::baseline_ddr3(),
                RdlConfig::none(),
            ),
            Benchmark::StackedDdr3OnChip => (
                Mounting::OnChip {
                    dedicated_tsvs: true,
                },
                TsvConfig::baseline_ddr3(),
                RdlConfig::none(),
            ),
            Benchmark::WideIo => (
                Mounting::OnChip {
                    dedicated_tsvs: true,
                },
                TsvConfig::new(160, TsvPlacement::Edge).expect("160 in range"),
                RdlConfig::enabled(crate::rdl::RdlScope::AllDies),
            ),
            Benchmark::Hmc => (
                Mounting::OnChip {
                    dedicated_tsvs: true,
                },
                TsvConfig::new(384, TsvPlacement::Edge).expect("384 in range"),
                RdlConfig::none(),
            ),
        };
        StackDesignBuilder {
            design: StackDesign {
                benchmark,
                mounting,
                pdn: PdnSpec::baseline(),
                tsv,
                bonding: BondingStyle::F2B,
                rdl,
                wire_bond: false,
                dram_dies: benchmark.spec().dram_dies,
                dram_tech,
                logic_tech,
            },
        }
    }

    /// Overrides the DRAM die count (e.g. `1` for the 2D DDR3 calibration
    /// design of Section 2.2).
    ///
    /// # Panics
    ///
    /// Panics if `dies` is zero.
    pub fn dram_dies(mut self, dies: usize) -> Self {
        assert!(dies > 0, "a stack needs at least one DRAM die");
        self.design.dram_dies = dies;
        self
    }

    /// Overrides the mounting style.
    pub fn mounting(mut self, mounting: Mounting) -> Self {
        self.design.mounting = mounting;
        self
    }

    /// Overrides the PDN wire sizing.
    pub fn pdn(mut self, pdn: PdnSpec) -> Self {
        self.design.pdn = pdn;
        self
    }

    /// Overrides the TSV configuration.
    pub fn tsv(mut self, tsv: TsvConfig) -> Self {
        self.design.tsv = tsv;
        self
    }

    /// Overrides the bonding style.
    pub fn bonding(mut self, bonding: BondingStyle) -> Self {
        self.design.bonding = bonding;
        self
    }

    /// Overrides the RDL configuration.
    pub fn rdl(mut self, rdl: RdlConfig) -> Self {
        self.design.rdl = rdl;
        self
    }

    /// Enables or disables backside wire bonding.
    pub fn wire_bond(mut self, wire_bond: bool) -> Self {
        self.design.wire_bond = wire_bond;
        self
    }

    /// Overrides the DRAM technology (calibration experiments).
    pub fn dram_tech(mut self, tech: Technology) -> Self {
        self.design.dram_tech = tech;
        self
    }

    /// Overrides the logic technology.
    pub fn logic_tech(mut self, tech: Technology) -> Self {
        self.design.logic_tech = tech;
        self
    }

    /// Finalizes the design.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidCombination`] if the options violate a
    /// benchmark constraint (see [`StackDesign::validate`]).
    pub fn build(self) -> Result<StackDesign, LayoutError> {
        self.design.validate()?;
        Ok(self.design)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::rdl::RdlScope;

    #[test]
    fn baselines_are_valid_and_match_table9() {
        for b in Benchmark::ALL {
            let d = StackDesign::baseline(b);
            assert!(d.validate().is_ok(), "{b} baseline invalid");
            assert_eq!(d.pdn(), PdnSpec::baseline());
            assert_eq!(d.bonding(), BondingStyle::F2B);
            assert!(!d.has_wire_bond());
        }
        assert_eq!(
            StackDesign::baseline(Benchmark::StackedDdr3OffChip)
                .tsv()
                .count(),
            33
        );
        assert_eq!(StackDesign::baseline(Benchmark::WideIo).tsv().count(), 160);
        assert_eq!(StackDesign::baseline(Benchmark::Hmc).tsv().count(), 384);
        assert!(StackDesign::baseline(Benchmark::WideIo).rdl().is_enabled());
        assert!(StackDesign::baseline(Benchmark::StackedDdr3OnChip)
            .mounting()
            .has_dedicated_tsvs());
    }

    #[test]
    fn wide_io_tsv_count_is_fixed() {
        let err = StackDesign::builder(Benchmark::WideIo)
            .tsv(TsvConfig::new(200, TsvPlacement::Center).unwrap())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("160"));
    }

    #[test]
    fn distributed_tsvs_are_hmc_only() {
        let err = StackDesign::builder(Benchmark::StackedDdr3OffChip)
            .tsv(TsvConfig::new(100, TsvPlacement::Distributed).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, LayoutError::InvalidCombination { .. }));

        let ok = StackDesign::builder(Benchmark::Hmc)
            .tsv(TsvConfig::new(160, TsvPlacement::Distributed).unwrap())
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn hmc_minimum_tsv_count() {
        let err = StackDesign::builder(Benchmark::Hmc)
            .tsv(TsvConfig::new(100, TsvPlacement::Edge).unwrap())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("160"));
    }

    #[test]
    fn off_chip_cannot_be_mounted() {
        let err = StackDesign::builder(Benchmark::StackedDdr3OffChip)
            .mounting(Mounting::OnChip {
                dedicated_tsvs: false,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, LayoutError::InvalidCombination { .. }));
    }

    #[test]
    fn builder_overrides_options() {
        let d = StackDesign::builder(Benchmark::StackedDdr3OffChip)
            .pdn(PdnSpec::new(0.2, 0.4).unwrap())
            .bonding(BondingStyle::F2F)
            .rdl(RdlConfig::enabled(RdlScope::BottomOnly))
            .wire_bond(true)
            .build()
            .unwrap();
        assert_eq!(d.pdn().m3_usage(), 0.4);
        assert!(d.bonding().is_f2f());
        assert!(d.rdl().is_enabled());
        assert!(d.has_wire_bond());
    }

    #[test]
    fn floorplans_reflect_benchmark() {
        let d = StackDesign::baseline(Benchmark::Hmc);
        assert_eq!(d.dram_floorplan().bank_count(), 32);
        assert!(d.logic_floorplan().is_some());

        let d = StackDesign::baseline(Benchmark::StackedDdr3OffChip);
        assert!(d.logic_floorplan().is_none());
    }

    #[test]
    fn wide_io_uses_low_voltage() {
        let d = StackDesign::baseline(Benchmark::WideIo);
        assert_eq!(d.dram_tech().vdd().value(), 1.2);
    }
}
