//! Property tests over the full design space: every cost term stays within
//! its Table 8 range, and the cost model is monotone in each knob.

use pi3d_layout::{
    Benchmark, BondingStyle, Mounting, PdnSpec, RdlConfig, RdlScope, StackDesign, TsvConfig,
    TsvPlacement,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = (f64, f64, usize, bool, bool, bool, bool)> {
    (
        0.10f64..=0.20,
        0.10f64..=0.40,
        15usize..=480,
        any::<bool>(), // f2f
        any::<bool>(), // rdl
        any::<bool>(), // wire bond
        any::<bool>(), // edge (vs centre)
    )
}

fn build(m2: f64, m3: f64, tc: usize, f2f: bool, rdl: bool, wb: bool, edge: bool) -> StackDesign {
    StackDesign::builder(Benchmark::StackedDdr3OffChip)
        .pdn(PdnSpec::new(m2, m3).expect("in range"))
        .tsv(
            TsvConfig::new(
                tc,
                if edge {
                    TsvPlacement::Edge
                } else {
                    TsvPlacement::Center
                },
            )
            .expect("in range"),
        )
        .bonding(if f2f {
            BondingStyle::F2F
        } else {
            BondingStyle::F2B
        })
        .rdl(if rdl {
            RdlConfig::enabled(RdlScope::AllDies)
        } else {
            RdlConfig::none()
        })
        .wire_bond(wb)
        .build()
        .expect("valid design")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cost_terms_stay_in_their_table8_ranges(
        (m2, m3, tc, f2f, rdl, wb, edge) in arb_point(),
    ) {
        let cost = build(m2, m3, tc, f2f, rdl, wb, edge).cost();
        prop_assert!((0.025..=0.0500001).contains(&cost.m2), "m2 {}", cost.m2);
        prop_assert!((0.025..=0.1000001).contains(&cost.m3), "m3 {}", cost.m3);
        prop_assert!((0.077..=0.45).contains(&cost.tsv_count), "tc {}", cost.tsv_count);
        prop_assert!(cost.tsv_location >= 0.0);
        prop_assert!(cost.total > 0.0 && cost.total < 2.0);
        // The total is the sum of its parts.
        let sum = cost.m2 + cost.m3 + cost.tsv_count + cost.tsv_location
            + cost.dedicated + cost.bonding + cost.rdl + cost.wire_bond;
        prop_assert!((cost.total - sum).abs() < 1e-12);
    }

    #[test]
    fn cost_is_monotone_in_each_knob(
        (m2, m3, tc, f2f, rdl, wb, edge) in arb_point(),
    ) {
        let base = build(m2, m3, tc, f2f, rdl, wb, edge).cost().total;
        if m2 <= 0.19 {
            prop_assert!(build(m2 + 0.01, m3, tc, f2f, rdl, wb, edge).cost().total > base);
        }
        if m3 <= 0.39 {
            prop_assert!(build(m2, m3 + 0.01, tc, f2f, rdl, wb, edge).cost().total > base);
        }
        if tc <= 450 {
            prop_assert!(build(m2, m3, tc + 30, f2f, rdl, wb, edge).cost().total > base);
        }
        if !rdl {
            prop_assert!(build(m2, m3, tc, f2f, true, wb, edge).cost().total > base);
        }
        if !wb {
            prop_assert!(build(m2, m3, tc, f2f, rdl, true, edge).cost().total > base);
        }
        if !f2f {
            prop_assert!(build(m2, m3, tc, true, rdl, wb, edge).cost().total > base);
        }
        if !edge {
            // Centre -> edge adds the location term.
            prop_assert!(build(m2, m3, tc, f2f, rdl, wb, true).cost().total > base);
        }
    }

    #[test]
    fn tsv_positions_always_match_the_count_and_stay_on_die(
        tc in 15usize..=480,
        placement_idx in 0..3usize,
        w in 5.0f64..10.0,
        h in 5.0f64..10.0,
    ) {
        let placement = [TsvPlacement::Edge, TsvPlacement::Center, TsvPlacement::Distributed]
            [placement_idx];
        let cfg = TsvConfig::new(tc, placement).expect("in range");
        let pts = cfg.positions(w, h);
        prop_assert_eq!(pts.len(), tc);
        for (x, y) in pts {
            prop_assert!((0.0..=w).contains(&x), "x {x} off a {w}-wide die");
            prop_assert!((0.0..=h).contains(&y), "y {y} off a {h}-tall die");
        }
    }

    #[test]
    fn on_chip_designs_cost_at_least_their_off_chip_twins(
        (m2, m3, tc, f2f, rdl, wb, edge) in arb_point(),
    ) {
        let off = build(m2, m3, tc, f2f, rdl, wb, edge).cost().total;
        let on = StackDesign::builder(Benchmark::StackedDdr3OnChip)
            .mounting(Mounting::OnChip { dedicated_tsvs: true })
            .pdn(PdnSpec::new(m2, m3).expect("in range"))
            .tsv(
                TsvConfig::new(tc, if edge { TsvPlacement::Edge } else { TsvPlacement::Center })
                    .expect("in range"),
            )
            .bonding(if f2f { BondingStyle::F2F } else { BondingStyle::F2B })
            .rdl(if rdl { RdlConfig::enabled(RdlScope::AllDies) } else { RdlConfig::none() })
            .wire_bond(wb)
            .build()
            .expect("valid design")
            .cost()
            .total;
        // Dedicated TSVs add 0.06 on top of the shared structure.
        prop_assert!((on - off - 0.06).abs() < 1e-12, "on {on} vs off {off}");
    }
}
