//! Property tests over the full design space: every cost term stays within
//! its Table 8 range, and the cost model is monotone in each knob.
//!
//! Random design points come from the seeded [`SplitMix64`] generator
//! (the proptest crate is unavailable offline); every case is
//! reproducible from the loop index printed in the assertion message.

use pi3d_layout::{
    Benchmark, BondingStyle, Mounting, PdnSpec, RdlConfig, RdlScope, StackDesign, TsvConfig,
    TsvPlacement,
};
use pi3d_telemetry::rng::SplitMix64;

const CASES: u64 = 128;

struct Point {
    m2: f64,
    m3: f64,
    tc: usize,
    f2f: bool,
    rdl: bool,
    wb: bool,
    edge: bool,
}

fn arb_point(rng: &mut SplitMix64) -> Point {
    Point {
        m2: rng.range_f64(0.10, 0.20),
        m3: rng.range_f64(0.10, 0.40),
        tc: rng.range(15, 481) as usize,
        f2f: rng.chance(0.5),
        rdl: rng.chance(0.5),
        wb: rng.chance(0.5),
        edge: rng.chance(0.5),
    }
}

fn build(m2: f64, m3: f64, tc: usize, f2f: bool, rdl: bool, wb: bool, edge: bool) -> StackDesign {
    StackDesign::builder(Benchmark::StackedDdr3OffChip)
        .pdn(PdnSpec::new(m2, m3).expect("in range"))
        .tsv(
            TsvConfig::new(
                tc,
                if edge {
                    TsvPlacement::Edge
                } else {
                    TsvPlacement::Center
                },
            )
            .expect("in range"),
        )
        .bonding(if f2f {
            BondingStyle::F2F
        } else {
            BondingStyle::F2B
        })
        .rdl(if rdl {
            RdlConfig::enabled(RdlScope::AllDies)
        } else {
            RdlConfig::none()
        })
        .wire_bond(wb)
        .build()
        .expect("valid design")
}

#[test]
fn cost_terms_stay_in_their_table8_ranges() {
    let mut rng = SplitMix64::new(0x1a40_0001);
    for case in 0..CASES {
        let p = arb_point(&mut rng);
        let cost = build(p.m2, p.m3, p.tc, p.f2f, p.rdl, p.wb, p.edge).cost();
        assert!(
            (0.025..=0.0500001).contains(&cost.m2),
            "case {case}: m2 {}",
            cost.m2
        );
        assert!(
            (0.025..=0.1000001).contains(&cost.m3),
            "case {case}: m3 {}",
            cost.m3
        );
        assert!(
            (0.077..=0.45).contains(&cost.tsv_count),
            "case {case}: tc {}",
            cost.tsv_count
        );
        assert!(cost.tsv_location >= 0.0, "case {case}");
        assert!(cost.total > 0.0 && cost.total < 2.0, "case {case}");
        // The total is the sum of its parts.
        let sum = cost.m2
            + cost.m3
            + cost.tsv_count
            + cost.tsv_location
            + cost.dedicated
            + cost.bonding
            + cost.rdl
            + cost.wire_bond;
        assert!((cost.total - sum).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn cost_is_monotone_in_each_knob() {
    let mut rng = SplitMix64::new(0x1a40_0002);
    for case in 0..CASES {
        let p = arb_point(&mut rng);
        let (m2, m3, tc, f2f, rdl, wb, edge) = (p.m2, p.m3, p.tc, p.f2f, p.rdl, p.wb, p.edge);
        let base = build(m2, m3, tc, f2f, rdl, wb, edge).cost().total;
        if m2 <= 0.19 {
            assert!(
                build(m2 + 0.01, m3, tc, f2f, rdl, wb, edge).cost().total > base,
                "case {case}: m2"
            );
        }
        if m3 <= 0.39 {
            assert!(
                build(m2, m3 + 0.01, tc, f2f, rdl, wb, edge).cost().total > base,
                "case {case}: m3"
            );
        }
        if tc <= 450 {
            assert!(
                build(m2, m3, tc + 30, f2f, rdl, wb, edge).cost().total > base,
                "case {case}: tsv count"
            );
        }
        if !rdl {
            assert!(
                build(m2, m3, tc, f2f, true, wb, edge).cost().total > base,
                "case {case}: rdl"
            );
        }
        if !wb {
            assert!(
                build(m2, m3, tc, f2f, rdl, true, edge).cost().total > base,
                "case {case}: wire bond"
            );
        }
        if !f2f {
            assert!(
                build(m2, m3, tc, true, rdl, wb, edge).cost().total > base,
                "case {case}: bonding"
            );
        }
        if !edge {
            // Centre -> edge adds the location term.
            assert!(
                build(m2, m3, tc, f2f, rdl, wb, true).cost().total > base,
                "case {case}: placement"
            );
        }
    }
}

#[test]
fn tsv_positions_always_match_the_count_and_stay_on_die() {
    let mut rng = SplitMix64::new(0x1a40_0003);
    for case in 0..CASES {
        let tc = rng.range(15, 481) as usize;
        let placement = [
            TsvPlacement::Edge,
            TsvPlacement::Center,
            TsvPlacement::Distributed,
        ][rng.next_below(3) as usize];
        let w = rng.range_f64(5.0, 10.0);
        let h = rng.range_f64(5.0, 10.0);
        let cfg = TsvConfig::new(tc, placement).expect("in range");
        let pts = cfg.positions(w, h);
        assert_eq!(pts.len(), tc, "case {case}");
        for (x, y) in pts {
            assert!(
                (0.0..=w).contains(&x),
                "case {case}: x {x} off a {w}-wide die"
            );
            assert!(
                (0.0..=h).contains(&y),
                "case {case}: y {y} off a {h}-tall die"
            );
        }
    }
}

#[test]
fn on_chip_designs_cost_at_least_their_off_chip_twins() {
    let mut rng = SplitMix64::new(0x1a40_0004);
    for case in 0..CASES {
        let p = arb_point(&mut rng);
        let off = build(p.m2, p.m3, p.tc, p.f2f, p.rdl, p.wb, p.edge)
            .cost()
            .total;
        let on = StackDesign::builder(Benchmark::StackedDdr3OnChip)
            .mounting(Mounting::OnChip {
                dedicated_tsvs: true,
            })
            .pdn(PdnSpec::new(p.m2, p.m3).expect("in range"))
            .tsv(
                TsvConfig::new(
                    p.tc,
                    if p.edge {
                        TsvPlacement::Edge
                    } else {
                        TsvPlacement::Center
                    },
                )
                .expect("in range"),
            )
            .bonding(if p.f2f {
                BondingStyle::F2F
            } else {
                BondingStyle::F2B
            })
            .rdl(if p.rdl {
                RdlConfig::enabled(RdlScope::AllDies)
            } else {
                RdlConfig::none()
            })
            .wire_bond(p.wb)
            .build()
            .expect("valid design")
            .cost()
            .total;
        // Dedicated TSVs add 0.06 on top of the shared structure.
        assert!(
            (on - off - 0.06).abs() < 1e-12,
            "case {case}: on {on} vs off {off}"
        );
    }
}
