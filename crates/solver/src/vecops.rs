//! Small dense-vector kernels shared by the iterative and direct solvers.
//!
//! These are deliberately plain, allocation-free loops over slices: the
//! vectors in power-grid analysis are large but the operations are trivially
//! memory-bound, so clarity wins over cleverness.

/// Returns the dot product `xᵀ·y`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Computes `y ← a·x + y` in place.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Computes `y ← x + b·y` in place (the "xpby" update used by CG for the
/// search direction).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// Returns the Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Returns the maximum absolute entry, or 0.0 for an empty slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn xpby_updates_search_direction() {
        let mut p = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn norms_agree_on_axis_vector() {
        let x = [0.0, -3.0, 0.0];
        assert_eq!(norm2(&x), 3.0);
        assert_eq!(norm_inf(&x), 3.0);
    }

    #[test]
    fn norm_inf_of_empty_is_zero() {
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
