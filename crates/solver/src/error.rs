use crate::CgSolution;
use std::error::Error;
use std::fmt;

/// Errors produced while assembling or solving linear systems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// A matrix entry referenced a row or column outside the matrix.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Declared dimension of the (square) matrix.
        dim: usize,
    },
    /// The right-hand side (or an initial guess) had the wrong length.
    DimensionMismatch {
        /// Dimension expected by the matrix.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// The matrix is not positive definite (a non-positive pivot or
    /// diagonal was encountered).
    NotPositiveDefinite {
        /// Index at which definiteness failed.
        index: usize,
        /// Offending pivot/diagonal value.
        value: f64,
    },
    /// The iterative solver failed to reach the requested tolerance.
    ///
    /// The work already performed is not discarded: `partial` carries the
    /// best iterate, its residual trace, and the iteration count, so
    /// callers can inspect how the solve diverged, warm-start a retry, or
    /// hand the iterate to a fallback solver.
    NonConverged {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Relative residual norm at the final iteration.
        residual: f64,
        /// Tolerance that was requested.
        tolerance: f64,
        /// The final iterate and its per-iteration residual trace.
        partial: Box<CgSolution>,
    },
    /// The solve was cancelled cooperatively (SIGINT or programmatic
    /// cancel) before reaching the requested tolerance.
    ///
    /// As with [`NonConverged`](Self::NonConverged), the best iterate is
    /// preserved in `partial` so interrupted campaigns keep the work.
    Cancelled {
        /// Iterations completed before the cancellation was observed.
        iterations: usize,
        /// Relative residual norm at the last completed iteration.
        residual: f64,
        /// The final iterate and its per-iteration residual trace.
        partial: Box<CgSolution>,
    },
    /// The solve's wall-clock deadline passed before convergence.
    DeadlineExceeded {
        /// Iterations completed before the deadline was observed.
        iterations: usize,
        /// Relative residual norm at the last completed iteration.
        residual: f64,
        /// The final iterate and its per-iteration residual trace.
        partial: Box<CgSolution>,
    },
    /// A matrix value was NaN or infinite.
    NonFiniteValue {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
    },
    /// The matrix has an empty row, i.e. a node with no connections.
    FloatingNode {
        /// Row index of the disconnected node.
        row: usize,
    },
    /// Multigrid preconditioning was requested without usable grid
    /// geometry: either the system was prepared without any
    /// [`StencilGrid`](crate::StencilGrid) description (use
    /// [`PreparedSystem::with_geometry`](crate::PreparedSystem::with_geometry)),
    /// or the supplied grids do not tile the matrix dimension.
    MissingGridGeometry,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SolverError::IndexOutOfBounds { row, col, dim } => {
                write!(
                    f,
                    "entry ({row}, {col}) out of bounds for {dim}x{dim} matrix"
                )
            }
            SolverError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "vector length {found} does not match matrix dimension {expected}"
                )
            }
            SolverError::NotPositiveDefinite { index, value } => {
                write!(
                    f,
                    "matrix not positive definite: pivot {value:.3e} at index {index}"
                )
            }
            SolverError::NonConverged {
                iterations,
                residual,
                tolerance,
                ..
            } => {
                write!(
                    f,
                    "conjugate gradient failed to converge after {iterations} iterations \
                     (residual {residual:.3e}, tolerance {tolerance:.3e})"
                )
            }
            SolverError::Cancelled {
                iterations,
                residual,
                ..
            } => {
                write!(
                    f,
                    "solve cancelled after {iterations} iterations (residual {residual:.3e})"
                )
            }
            SolverError::DeadlineExceeded {
                iterations,
                residual,
                ..
            } => {
                write!(
                    f,
                    "solve deadline exceeded after {iterations} iterations \
                     (residual {residual:.3e})"
                )
            }
            SolverError::NonFiniteValue { row, col } => {
                write!(f, "non-finite matrix value at ({row}, {col})")
            }
            SolverError::FloatingNode { row } => {
                write!(
                    f,
                    "node {row} has no conductance to any other node or supply"
                )
            }
            SolverError::MissingGridGeometry => {
                write!(
                    f,
                    "multigrid preconditioner requires regular grid geometry tiling the \
                     system (prepare the system with its stack's grids, e.g. \
                     PreparedSystem::with_geometry)"
                )
            }
        }
    }
}

impl Error for SolverError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = SolverError::IndexOutOfBounds {
            row: 3,
            col: 4,
            dim: 2,
        };
        assert_eq!(e.to_string(), "entry (3, 4) out of bounds for 2x2 matrix");

        let e = SolverError::DimensionMismatch {
            expected: 5,
            found: 4,
        };
        assert!(e.to_string().contains("length 4"));
        assert!(e.to_string().contains("dimension 5"));

        let e = SolverError::NonConverged {
            iterations: 10,
            residual: 1e-3,
            tolerance: 1e-9,
            partial: Box::new(CgSolution {
                x: vec![0.0; 4],
                iterations: 10,
                relative_residual: 1e-3,
                residual_trace: vec![1e-1, 1e-2, 1e-3],
            }),
        };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverError>();
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn Error> = Box::new(SolverError::FloatingNode { row: 7 });
        assert!(e.to_string().contains("node 7"));
    }
}
