//! Geometric multigrid preconditioner for stacked-grid PDN systems.
//!
//! Jacobi and IC(0) preconditioners transfer information one mesh edge
//! per CG iteration, so iteration counts grow roughly with mesh width as
//! the stack is refined. A multigrid V-cycle moves the smooth (long
//! wavelength) part of the error through a hierarchy of coarser grids —
//! each level halving every sheet's resolution — and resolves it with a
//! small dense Cholesky at the bottom, which keeps preconditioned CG
//! iteration counts essentially flat under refinement.
//!
//! The hierarchy is built from the same [`StencilGrid`] geometry the
//! matrix-free operator uses: prolongation is per-grid bilinear
//! interpolation in index space (cell-centered coarsening,
//! `n → ⌈n/2⌉`), restriction is its transpose (full weighting), and
//! each coarse matrix is the Galerkin product `Pᵀ·A·P`, so inter-grid
//! vertical links and faulted entries coarsen consistently without any
//! special casing. Smoothing is one IC(0) solve per sweep (falling back
//! to damped Jacobi, `ω = 0.7`, if a level's incomplete factorization
//! breaks down), one pre-sweep from a zero guess and one symmetric
//! post-sweep, which makes the V-cycle a symmetric positive operator —
//! a valid CG preconditioner. Every apply runs sequentially in a fixed
//! order, so solves stay bit-identical across `--threads` values.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::csr::{CooBuilder, CsrMatrix};
use crate::dense::{CholeskyFactor, DenseMatrix};
use crate::error::SolverError;
use crate::precond::IncompleteCholesky;
use crate::stencil::{Operator, StencilGrid, StencilOperator};

/// Damping factor for the weighted-Jacobi fallback smoother.
const OMEGA: f64 = 0.7;
/// Stop coarsening once a level has at most this many nodes; the level
/// is then factored densely (at 600 nodes: a one-off ~10⁷-flop
/// factorization, ~3 MB of triangle).
const COARSE_LIMIT: usize = 600;
/// Hard cap on hierarchy depth (a 2^24-wide sheet would hit the node
/// limits long before this does).
const MAX_LEVELS: usize = 24;
/// Largest system the coarsest-level dense factorization accepts when
/// coarsening stops making progress (degenerate geometry).
const DENSE_COARSE_MAX: usize = 2_048;

/// Per-grid bilinear prolongation from a coarse level to a fine level,
/// stored as one short row (≤ 4 weights) per fine node. Restriction
/// reuses the same rows transposed (full weighting).
#[derive(Debug)]
struct Interp {
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    weight: Vec<f64>,
}

impl Interp {
    fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col[lo..hi]
            .iter()
            .zip(&self.weight[lo..hi])
            .map(|(&c, &w)| (c as usize, w))
    }
}

/// Storage behind one smoothing level's operator: the finest level
/// shares the mesh's matrix-free stencil when one extracted (compact),
/// coarser levels own their Galerkin matrices.
enum LevelOp {
    Stencil(Arc<StencilOperator>),
    Csr(CsrMatrix),
}

impl LevelOp {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        match self {
            LevelOp::Stencil(s) => s.apply_into(x, y),
            LevelOp::Csr(m) => m.mul_vec_into(x, y),
        }
    }
}

/// Per-level smoother. PDN stacks glue each die's metal sheets together
/// with per-node vias whose conductance dwarfs the in-sheet straps, so
/// the via terms dominate every diagonal and point-Jacobi barely touches
/// in-plane error — V-cycles built on it degrade as the mesh refines.
/// IC(0) absorbs those stiff couplings (and the sheets' ~20× x/y strap
/// anisotropy) into its triangular factors, keeping iteration counts
/// flat; damped Jacobi remains as the fallback for the rare level where
/// IC(0) pivots break down on a Galerkin-coarsened matrix.
enum Smoother {
    Ic(IncompleteCholesky),
    Jacobi(Vec<f64>),
}

impl Smoother {
    /// One smoothing solve `z = M⁻¹·r` (damped for the Jacobi fallback).
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Smoother::Ic(ic) => ic.apply(r, z),
            Smoother::Jacobi(inv_diag) => {
                for i in 0..r.len() {
                    z[i] = OMEGA * inv_diag[i] * r[i];
                }
            }
        }
    }
}

/// One smoothing level: its operator, smoother, and the prolongation
/// from the next-coarser level.
struct MgLevel {
    op: LevelOp,
    smoother: Smoother,
    interp: Interp,
    coarse_dim: usize,
}

/// Scratch vectors for one V-cycle descent, pooled so concurrent
/// batch-member solves don't allocate per apply.
struct LevelBuffers {
    tmp: Vec<f64>,
    res: Vec<f64>,
    rc: Vec<f64>,
    zc: Vec<f64>,
}

/// Geometric multigrid V-cycle preconditioner (see the module docs).
pub struct Multigrid {
    dim: usize,
    levels: Vec<MgLevel>,
    coarse: CholeskyFactor,
    workspaces: Mutex<Vec<Vec<LevelBuffers>>>,
    cycles: AtomicU64,
}

impl std::fmt::Debug for Multigrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Multigrid")
            .field("dim", &self.dim)
            .field("levels", &(self.levels.len() + 1))
            .field("coarse_dim", &self.coarse.dim())
            .field("cycles", &self.cycles.load(Ordering::Relaxed))
            .finish()
    }
}

/// Cell-centered coarse geometry: each grid halves along both axes
/// (`n → ⌈n/2⌉`, floor 1) with bases repacked contiguously. Coarsening
/// is deliberately full (not semi) even though individual sheets route
/// ~20× stronger along one axis: each die's two sheets are glued
/// node-by-node with strong vias and have *opposite* strong axes, so the
/// composite system is near-isotropic — and per-sheet semi-coarsening
/// would give glued partners mismatched coarse spaces.
fn coarsen_grids(grids: &[StencilGrid]) -> Vec<StencilGrid> {
    let mut base = 0usize;
    grids
        .iter()
        .map(|g| {
            let nx = g.nx.div_ceil(2).max(1);
            let ny = g.ny.div_ceil(2).max(1);
            let coarse = StencilGrid { base, nx, ny };
            base += nx * ny;
            coarse
        })
        .collect()
}

fn total_nodes(grids: &[StencilGrid]) -> usize {
    grids.iter().map(StencilGrid::node_count).sum()
}

/// The two coarse indices and weights a fine index interpolates from
/// along one axis (cell-centered bilinear; clamped at the boundary,
/// where the second weight is zero).
fn axis_weights(i: usize, n_fine: usize, n_coarse: usize) -> ((usize, f64), (usize, f64)) {
    if n_coarse <= 1 {
        return ((0, 1.0), (0, 0.0));
    }
    let u = (i as f64 + 0.5) / n_fine as f64;
    let c = u * n_coarse as f64 - 0.5;
    if c <= 0.0 {
        ((0, 1.0), (0, 0.0))
    } else if c >= (n_coarse - 1) as f64 {
        ((n_coarse - 1, 1.0), (n_coarse - 1, 0.0))
    } else {
        let i0 = c as usize;
        let w = c - i0 as f64;
        ((i0, 1.0 - w), (i0 + 1, w))
    }
}

/// Builds the bilinear prolongation rows from `coarse` geometry to
/// `fine` geometry (grid by grid; entries per row emitted in ascending
/// coarse-column order).
fn build_interp(fine: &[StencilGrid], coarse: &[StencilGrid]) -> Interp {
    let n = total_nodes(fine);
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col = Vec::with_capacity(n * 4);
    let mut weight = Vec::with_capacity(n * 4);
    for (g, cg) in fine.iter().zip(coarse) {
        for iy in 0..g.ny {
            let (y0, y1) = axis_weights(iy, g.ny, cg.ny);
            for ix in 0..g.nx {
                let (x0, x1) = axis_weights(ix, g.nx, cg.nx);
                for (cy, wy) in [y0, y1] {
                    if wy == 0.0 {
                        continue;
                    }
                    for (cx, wx) in [x0, x1] {
                        let w = wy * wx;
                        if w == 0.0 {
                            continue;
                        }
                        col.push((cg.base + cy * cg.nx + cx) as u32);
                        weight.push(w);
                    }
                }
                row_ptr.push(col.len());
            }
        }
    }
    Interp {
        row_ptr,
        col,
        weight,
    }
}

/// Galerkin coarse operator `Pᵀ·A·P`, computed one coarse row at a time
/// with a dense scratch accumulator and an explicit touched list (sorted
/// before emission, so assembly is deterministic).
fn galerkin(a: &CsrMatrix, p: &Interp, coarse_dim: usize) -> Result<CsrMatrix, SolverError> {
    let n = p.rows();
    // Transpose of P: which fine rows feed each coarse row.
    let mut counts = vec![0usize; coarse_dim];
    for &c in &p.col {
        counts[c as usize] += 1;
    }
    let mut rt_ptr = vec![0usize; coarse_dim + 1];
    for i in 0..coarse_dim {
        rt_ptr[i + 1] = rt_ptr[i] + counts[i];
    }
    let mut rt_fine = vec![0u32; p.col.len()];
    let mut rt_w = vec![0.0f64; p.col.len()];
    let mut cursor = rt_ptr.clone();
    for i in 0..n {
        for (c, w) in p.row(i) {
            let k = cursor[c];
            rt_fine[k] = i as u32;
            rt_w[k] = w;
            cursor[c] += 1;
        }
    }

    let mut coo = CooBuilder::with_capacity(coarse_dim, coarse_dim * 9);
    let mut scratch = vec![0.0f64; coarse_dim];
    let mut epoch = vec![0u32; coarse_dim];
    let mut touched: Vec<u32> = Vec::with_capacity(32);
    for (coarse_row, window) in rt_ptr.windows(2).enumerate() {
        let generation = coarse_row as u32 + 1;
        for k in window[0]..window[1] {
            let (i, wi) = (rt_fine[k] as usize, rt_w[k]);
            for (j, aij) in a.row(i) {
                let scale = wi * aij;
                for (cj, wj) in p.row(j) {
                    if epoch[cj] != generation {
                        epoch[cj] = generation;
                        scratch[cj] = 0.0;
                        touched.push(cj as u32);
                    }
                    scratch[cj] += scale * wj;
                }
            }
        }
        touched.sort_unstable();
        for &cj in &touched {
            coo.add(coarse_row, cj as usize, scratch[cj as usize]);
        }
        touched.clear();
    }
    coo.into_csr()
}

fn inverse_diagonal(diag: &[f64]) -> Result<Vec<f64>, SolverError> {
    diag.iter()
        .enumerate()
        .map(|(index, &d)| {
            if d <= 0.0 {
                Err(SolverError::NotPositiveDefinite { index, value: d })
            } else {
                Ok(1.0 / d)
            }
        })
        .collect()
}

impl Multigrid {
    /// Builds the hierarchy for `a` over the given grid geometry,
    /// sharing `fine_op` (the mesh's extracted stencil, when available)
    /// for finest-level applies instead of cloning the fine matrix.
    ///
    /// # Errors
    ///
    /// [`SolverError::MissingGridGeometry`] when the grids do not tile
    /// `[0, a.dim())` contiguously (or coarsening cannot make progress
    /// on a degenerate geometry); [`SolverError::NotPositiveDefinite`]
    /// when a level's diagonal or the coarse factorization breaks down.
    pub fn new(
        a: &CsrMatrix,
        grids: &[StencilGrid],
        fine_op: Option<Arc<StencilOperator>>,
    ) -> Result<Multigrid, SolverError> {
        let dim = a.dim();
        let mut next = 0usize;
        for g in grids {
            if g.nx == 0 || g.ny == 0 || g.base != next {
                return Err(SolverError::MissingGridGeometry);
            }
            next = g.base + g.node_count();
        }
        if grids.is_empty() || next != dim {
            return Err(SolverError::MissingGridGeometry);
        }

        let mut levels: Vec<MgLevel> = Vec::new();
        let mut owned: Option<CsrMatrix> = None;
        let mut cur_grids = grids.to_vec();
        let coarse = loop {
            let cur_a = owned.as_ref().unwrap_or(a);
            let cur_dim = cur_a.dim();
            let coarse_grids = coarsen_grids(&cur_grids);
            let coarse_dim = total_nodes(&coarse_grids);
            if cur_dim <= COARSE_LIMIT || levels.len() >= MAX_LEVELS || coarse_dim >= cur_dim {
                if coarse_dim >= cur_dim && cur_dim > DENSE_COARSE_MAX {
                    // Coarsening stalled far from the dense regime —
                    // the geometry can't support a hierarchy.
                    return Err(SolverError::MissingGridGeometry);
                }
                break DenseMatrix::from_csr(cur_a).cholesky()?;
            }
            let interp = build_interp(&cur_grids, &coarse_grids);
            let coarse_a = galerkin(cur_a, &interp, coarse_dim)?;
            let smoother = match IncompleteCholesky::new(cur_a) {
                Ok(ic) => Smoother::Ic(ic),
                Err(_) => Smoother::Jacobi(inverse_diagonal(&cur_a.diagonal())?),
            };
            let op = if let Some(m) = owned.take() {
                LevelOp::Csr(m)
            } else if let Some(s) = &fine_op {
                LevelOp::Stencil(s.clone())
            } else {
                LevelOp::Csr(a.clone())
            };
            levels.push(MgLevel {
                op,
                smoother,
                interp,
                coarse_dim,
            });
            owned = Some(coarse_a);
            cur_grids = coarse_grids;
        };

        #[cfg(feature = "telemetry")]
        {
            pi3d_telemetry::metrics::counter("solver.mg.builds").incr(1);
            pi3d_telemetry::metrics::gauge("solver.mg.levels").set((levels.len() + 1) as f64);
            pi3d_telemetry::metrics::gauge("solver.mg.coarse_dim").set(coarse.dim() as f64);
            pi3d_telemetry::debug!(
                "multigrid hierarchy: {} levels, coarse dim {}",
                levels.len() + 1,
                coarse.dim()
            );
        }

        Ok(Multigrid {
            dim,
            levels,
            coarse,
            workspaces: Mutex::new(Vec::new()),
            cycles: AtomicU64::new(0),
        })
    }

    /// Dimension of the finest level.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of levels in the hierarchy, counting the dense coarsest.
    pub fn levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Nodes on the dense coarsest level.
    pub fn coarse_dim(&self) -> usize {
        self.coarse.dim()
    }

    /// V-cycles applied so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    fn new_workspace(&self) -> Vec<LevelBuffers> {
        self.levels
            .iter()
            .map(|level| LevelBuffers {
                tmp: vec![0.0; level.interp.rows()],
                res: vec![0.0; level.interp.rows()],
                rc: vec![0.0; level.coarse_dim],
                zc: vec![0.0; level.coarse_dim],
            })
            .collect()
    }

    /// Applies one V-cycle: `z ≈ A⁻¹·r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `z` have a length other than [`dim`](Self::dim).
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.dim);
        assert_eq!(z.len(), self.dim);
        let total = self.cycles.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "telemetry")]
        {
            static CYCLES: std::sync::OnceLock<&'static pi3d_telemetry::Counter> =
                std::sync::OnceLock::new();
            CYCLES
                .get_or_init(|| pi3d_telemetry::metrics::counter("solver.mg.cycles"))
                .incr(1);
            pi3d_telemetry::trace::counter("solver", "mg.cycles", total as f64);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = total;
        let mut ws = {
            let mut pool = self.workspaces.lock().unwrap_or_else(|e| e.into_inner());
            pool.pop().unwrap_or_else(|| self.new_workspace())
        };
        self.vcycle(0, r, z, &mut ws);
        let mut pool = self.workspaces.lock().unwrap_or_else(|e| e.into_inner());
        pool.push(ws);
    }

    fn vcycle(&self, k: usize, r: &[f64], z: &mut [f64], ws: &mut [LevelBuffers]) {
        let Some(level) = self.levels.get(k) else {
            // Coarsest level: direct dense solve. Dimensions match by
            // construction, so the factor cannot fail here.
            let solved = self
                .coarse
                .solve(r)
                .expect("coarse-level dimensions match by construction");
            z.copy_from_slice(&solved);
            return;
        };
        let Some((buf, rest)) = ws.split_first_mut() else {
            unreachable!("one buffer set per smoothing level");
        };

        // Pre-smooth from a zero guess: z = M⁻¹·r (no operator apply
        // needed), then form the residual the coarse grid will correct.
        {
            #[cfg(feature = "telemetry")]
            let _span = pi3d_telemetry::trace::span_with("mg", || format!("mg:level{k}:smooth"));
            level.smoother.apply(r, z);
            level.op.apply(z, &mut buf.tmp);
            for i in 0..r.len() {
                buf.res[i] = r[i] - buf.tmp[i];
            }
        }

        // Restrict the residual (full weighting, Pᵀ scatter).
        {
            #[cfg(feature = "telemetry")]
            let _span = pi3d_telemetry::trace::span_with("mg", || format!("mg:level{k}:restrict"));
            buf.rc.fill(0.0);
            for i in 0..r.len() {
                let res_i = buf.res[i];
                for (c, w) in level.interp.row(i) {
                    buf.rc[c] += w * res_i;
                }
            }
        }

        self.vcycle(k + 1, &buf.rc, &mut buf.zc, rest);

        // Prolong the coarse correction back up.
        {
            #[cfg(feature = "telemetry")]
            let _span = pi3d_telemetry::trace::span_with("mg", || format!("mg:level{k}:prolong"));
            for i in 0..r.len() {
                let mut acc = 0.0;
                for (c, w) in level.interp.row(i) {
                    acc += w * buf.zc[c];
                }
                z[i] += acc;
            }
        }

        // Symmetric post-smooth: z += M⁻¹·(r − A·z), the same smoother
        // as the pre-sweep so the V-cycle stays a symmetric operator.
        {
            #[cfg(feature = "telemetry")]
            let _span = pi3d_telemetry::trace::span_with("mg", || format!("mg:level{k}:smooth"));
            level.op.apply(z, &mut buf.tmp);
            for i in 0..r.len() {
                buf.res[i] = r[i] - buf.tmp[i];
            }
            level.smoother.apply(&buf.res, &mut buf.tmp);
            for i in 0..r.len() {
                z[i] += buf.tmp[i];
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cg::CgSolver;
    use crate::precond::{AppliedPreconditioner, Preconditioner};

    /// 2D Poisson-like grid with ground ties: the classic refinement
    /// stress for preconditioners.
    fn poisson(nx: usize, ny: usize) -> (CsrMatrix, Vec<StencilGrid>) {
        let mut coo = CooBuilder::new(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let n = iy * nx + ix;
                if ix + 1 < nx {
                    coo.stamp_conductance(n, n + 1, 1.0);
                }
                if iy + 1 < ny {
                    coo.stamp_conductance(n, n + nx, 1.0);
                }
                if ix == 0 {
                    coo.stamp_to_ground(n, 1.0);
                }
            }
        }
        (
            coo.into_csr().unwrap(),
            vec![StencilGrid { base: 0, nx, ny }],
        )
    }

    fn hotspot(n: usize) -> Vec<f64> {
        let mut b = vec![0.0; n];
        b[n / 2] = 1.0;
        b[n - 1] = 0.5;
        b
    }

    #[test]
    fn hierarchy_builds_and_reports_shape() {
        let (a, grids) = poisson(40, 40);
        let mg = Multigrid::new(&a, &grids, None).unwrap();
        assert_eq!(mg.dim(), 1600);
        assert!(mg.levels() >= 2, "expected a real hierarchy");
        assert!(mg.coarse_dim() <= COARSE_LIMIT);
        assert_eq!(mg.cycles(), 0);
    }

    #[test]
    fn tiny_systems_become_a_direct_solve() {
        let (a, grids) = poisson(5, 5);
        let mg = Multigrid::new(&a, &grids, None).unwrap();
        assert_eq!(mg.levels(), 1);
        // One application of an exact preconditioner gives CG the
        // answer almost immediately.
        let solver = CgSolver::new();
        let m = AppliedPreconditioner::Multigrid(mg);
        let sol = solver
            .solve_prepared(&a, &hotspot(25), None, &m, 1, usize::MAX)
            .unwrap();
        assert!(sol.iterations <= 2, "iterations {}", sol.iterations);
    }

    #[test]
    fn mg_matches_jacobi_solution_with_fewer_iterations() {
        let (a, grids) = poisson(48, 48);
        let b = hotspot(a.dim());
        let solver = CgSolver::new().with_tolerance(1e-10);

        let jacobi = AppliedPreconditioner::build(Preconditioner::Jacobi, &a).unwrap();
        let base = solver
            .solve_prepared(&a, &b, None, &jacobi, 1, usize::MAX)
            .unwrap();

        let mg = Multigrid::new(&a, &grids, None).unwrap();
        let m = AppliedPreconditioner::Multigrid(mg);
        let fast = solver
            .solve_prepared(&a, &b, None, &m, 1, usize::MAX)
            .unwrap();

        assert!(
            fast.iterations < base.iterations / 2,
            "mg {} vs jacobi {}",
            fast.iterations,
            base.iterations
        );
        for i in 0..b.len() {
            assert!(
                (fast.x[i] - base.x[i]).abs() < 1e-7,
                "solution mismatch at {i}: {} vs {}",
                fast.x[i],
                base.x[i]
            );
        }
    }

    #[test]
    fn iteration_counts_stay_flat_under_refinement() {
        let solver = CgSolver::new().with_tolerance(1e-10);
        let mut mg_iters = Vec::new();
        let mut jacobi_iters = Vec::new();
        // Every size is above COARSE_LIMIT so each run exercises a real
        // V-cycle rather than the direct coarse solve.
        for n in [32usize, 64, 96] {
            let (a, grids) = poisson(n, n);
            let b = hotspot(a.dim());
            let mg = Multigrid::new(&a, &grids, None).unwrap();
            let m = AppliedPreconditioner::Multigrid(mg);
            mg_iters.push(
                solver
                    .solve_prepared(&a, &b, None, &m, 1, usize::MAX)
                    .unwrap()
                    .iterations,
            );
            let j = AppliedPreconditioner::build(Preconditioner::Jacobi, &a).unwrap();
            jacobi_iters.push(
                solver
                    .solve_prepared(&a, &b, None, &j, 1, usize::MAX)
                    .unwrap()
                    .iterations,
            );
        }
        // Jacobi iteration counts grow with mesh width; MG's stay ~flat
        // (allow a little drift, but nothing like the Jacobi slope).
        assert!(
            jacobi_iters[2] > jacobi_iters[0] * 2,
            "jacobi should degrade under refinement: {jacobi_iters:?}"
        );
        assert!(
            mg_iters[2] <= mg_iters[0] + 6,
            "mg iterations should stay flat: {mg_iters:?}"
        );
    }

    #[test]
    fn bad_geometry_is_a_typed_error() {
        let (a, _) = poisson(10, 10);
        let wrong = vec![StencilGrid {
            base: 0,
            nx: 3,
            ny: 3,
        }];
        assert!(matches!(
            Multigrid::new(&a, &wrong, None),
            Err(SolverError::MissingGridGeometry)
        ));
        assert!(matches!(
            Multigrid::new(&a, &[], None),
            Err(SolverError::MissingGridGeometry)
        ));
    }

    #[test]
    fn interp_rows_are_convex_weights() {
        let (_, fine) = poisson(9, 7);
        let coarse = coarsen_grids(&fine);
        let p = build_interp(&fine, &coarse);
        assert_eq!(p.rows(), 63);
        for i in 0..p.rows() {
            let sum: f64 = p.row(i).map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} weights sum to {sum}");
            for (c, w) in p.row(i) {
                assert!(c < total_nodes(&coarse));
                assert!(w > 0.0 && w <= 1.0);
            }
        }
    }
}
