use crate::SolverError;

/// A coordinate-format (COO) accumulator used to assemble a [`CsrMatrix`].
///
/// Power-grid stamping naturally produces many contributions to the same
/// matrix entry (every resistor touching a node adds to that node's
/// diagonal). The builder therefore *sums* duplicate `(row, col)` entries
/// when converting to CSR.
///
/// # Examples
///
/// ```
/// use pi3d_solver::CooBuilder;
///
/// # fn main() -> Result<(), pi3d_solver::SolverError> {
/// let mut builder = CooBuilder::new(2);
/// builder.add(0, 0, 1.0);
/// builder.add(0, 0, 1.0); // duplicates are summed
/// builder.add(1, 1, 3.0);
/// let m = builder.into_csr()?;
/// assert_eq!(m.get(0, 0), 2.0);
/// assert_eq!(m.get(1, 1), 3.0);
/// assert_eq!(m.get(0, 1), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    dim: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// Creates a builder for a square `dim × dim` matrix.
    pub fn new(dim: usize) -> Self {
        CooBuilder {
            dim,
            entries: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `nnz` entries.
    pub fn with_capacity(dim: usize, nnz: usize) -> Self {
        CooBuilder {
            dim,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Declared dimension of the matrix under construction.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of raw (pre-deduplication) entries added so far.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` to entry `(row, col)`.
    ///
    /// Out-of-range indices and non-finite values are detected at
    /// [`into_csr`](Self::into_csr) time so that stamping loops stay branch-free.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.entries.push((row as u32, col as u32, value));
    }

    /// Stamps a two-terminal conductance `g` between nodes `a` and `b`,
    /// adding `+g` to both diagonals and `-g` to both off-diagonals.
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        self.add(a, a, g);
        self.add(b, b, g);
        self.add(a, b, -g);
        self.add(b, a, -g);
    }

    /// Stamps a conductance `g` from node `a` to an ideal supply (ground in
    /// the reduced system), adding `+g` to the diagonal only.
    pub fn stamp_to_ground(&mut self, a: usize, g: f64) {
        self.add(a, a, g);
    }

    /// Converts the accumulated triplets to compressed sparse row format,
    /// summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::IndexOutOfBounds`] if any entry lies outside
    /// the declared dimension, [`SolverError::NonFiniteValue`] if any summed
    /// entry is NaN or infinite, and [`SolverError::FloatingNode`] if a row
    /// ends up with no entries at all (an electrically floating node).
    pub fn into_csr(self) -> Result<CsrMatrix, SolverError> {
        let dim = self.dim;
        for &(r, c, _) in &self.entries {
            if r as usize >= dim || c as usize >= dim {
                return Err(SolverError::IndexOutOfBounds {
                    row: r as usize,
                    col: c as usize,
                    dim,
                });
            }
        }

        // Count entries per row, then bucket-sort triplets into rows.
        let mut row_counts = vec![0usize; dim];
        for &(r, _, _) in &self.entries {
            row_counts[r as usize] += 1;
        }
        let mut row_start = vec![0usize; dim + 1];
        for i in 0..dim {
            row_start[i + 1] = row_start[i] + row_counts[i];
        }
        let mut cols_raw = vec![0u32; self.entries.len()];
        let mut vals_raw = vec![0f64; self.entries.len()];
        let mut cursor = row_start.clone();
        for &(r, c, v) in &self.entries {
            let idx = cursor[r as usize];
            cols_raw[idx] = c;
            vals_raw[idx] = v;
            cursor[r as usize] += 1;
        }

        // Within each row: sort by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(dim + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        row_ptr.push(0usize);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..dim {
            scratch.clear();
            scratch.extend(
                cols_raw[row_start[r]..row_start[r + 1]]
                    .iter()
                    .copied()
                    .zip(vals_raw[row_start[r]..row_start[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                if !sum.is_finite() {
                    return Err(SolverError::NonFiniteValue {
                        row: r,
                        col: c as usize,
                    });
                }
                if sum != 0.0 {
                    col_idx.push(c);
                    values.push(sum);
                }
            }
            if row_ptr.last().copied() == Some(col_idx.len()) {
                return Err(SolverError::FloatingNode { row: r });
            }
            row_ptr.push(col_idx.len());
        }

        Ok(CsrMatrix {
            dim,
            row_ptr,
            col_idx,
            values,
        })
    }
}

/// A square sparse matrix in compressed sparse row (CSR) format.
///
/// Produced by [`CooBuilder::into_csr`]. Nodal conductance matrices of
/// resistive grids are symmetric positive definite; [`CsrMatrix`] itself does
/// not enforce symmetry (it is a storage format), but
/// [`is_symmetric`](Self::is_symmetric) and
/// [`is_diagonally_dominant`](Self::is_diagonally_dominant) let analysis code
/// assert the physical invariants cheaply.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    dim: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an identity matrix of the given dimension.
    ///
    /// # Examples
    ///
    /// ```
    /// use pi3d_solver::CsrMatrix;
    /// let eye = CsrMatrix::identity(3);
    /// assert_eq!(eye.get(2, 2), 1.0);
    /// assert_eq!(eye.nnz(), 3);
    /// ```
    pub fn identity(dim: usize) -> Self {
        CsrMatrix {
            dim,
            row_ptr: (0..=dim).collect(),
            col_idx: (0..dim as u32).collect(),
            values: vec![1.0; dim],
        }
    }

    /// Matrix dimension (the matrix is square).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, or `0.0` if it is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row >= dim()`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&(col as u32)) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored entries of one row as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row >= dim()`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Computes `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, SolverError> {
        if x.len() != self.dim {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.dim];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Computes `y = A·x` into an existing buffer (the hot loop of CG).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have a length other than `dim()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim);
        assert_eq!(y.len(), self.dim);
        #[cfg(feature = "telemetry")]
        {
            // One relaxed atomic add per spmv; negligible next to the
            // O(nnz) loop below.
            static SPMV: std::sync::OnceLock<&'static pi3d_telemetry::Counter> =
                std::sync::OnceLock::new();
            SPMV.get_or_init(|| pi3d_telemetry::metrics::counter("solver.csr.spmv"))
                .incr(1);
        }
        self.mul_rows_into(x, y, 0);
    }

    /// As [`mul_vec_into`](Self::mul_vec_into), partitioning the rows over
    /// up to `threads` scoped worker threads when the matrix is large
    /// enough to amortize the spawn cost (see
    /// [`PARALLEL_SPMV_MIN_DIM`](crate::PARALLEL_SPMV_MIN_DIM); callers
    /// that measured their own cutover use
    /// [`mul_vec_into_threaded_with`](Self::mul_vec_into_threaded_with)).
    ///
    /// Each row's dot product is computed with the same summation order as
    /// the sequential path, and rows are partitioned into contiguous
    /// ranges, so the result is bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have a length other than `dim()`.
    pub fn mul_vec_into_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        self.mul_vec_into_threaded_with(x, y, threads, crate::PARALLEL_SPMV_MIN_DIM);
    }

    /// As [`mul_vec_into_threaded`](Self::mul_vec_into_threaded) with an
    /// explicit sequential→parallel cutover: the chunked path is taken
    /// only when `dim() >= min_parallel_dim` (and `threads > 1`). The
    /// cutover affects wall-clock time only, never the result bits.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have a length other than `dim()`.
    pub fn mul_vec_into_threaded_with(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
        min_parallel_dim: usize,
    ) {
        let threads = threads.max(1).min(self.dim.max(1));
        if threads == 1 || self.dim < min_parallel_dim {
            self.mul_vec_into(x, y);
            return;
        }
        assert_eq!(x.len(), self.dim);
        assert_eq!(y.len(), self.dim);
        #[cfg(feature = "telemetry")]
        {
            static SPMV_PAR: std::sync::OnceLock<&'static pi3d_telemetry::Counter> =
                std::sync::OnceLock::new();
            SPMV_PAR
                .get_or_init(|| pi3d_telemetry::metrics::counter("solver.csr.spmv_parallel"))
                .incr(1);
        }
        let rows_per_chunk = self.dim.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, y_chunk) in y.chunks_mut(rows_per_chunk).enumerate() {
                let start = chunk_idx * rows_per_chunk;
                scope.spawn(move || self.mul_rows_into(x, y_chunk, start));
            }
        });
    }

    /// Multiplies the row range `[start, start + y.len())` of `A` by `x`
    /// into `y` (shared kernel of the sequential and chunked-parallel
    /// SpMV paths).
    fn mul_rows_into(&self, x: &[f64], y: &mut [f64], start: usize) {
        for (i, out) in y.iter_mut().enumerate() {
            let r = start + i;
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
        }
    }

    /// Returns the diagonal of the matrix.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.get(i, i)).collect()
    }

    /// Checks structural and numerical symmetry to within `tol` (relative).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for r in 0..self.dim {
            for (c, v) in self.row(r) {
                let vt = self.get(c, r);
                let scale = v.abs().max(vt.abs()).max(1.0);
                if (v - vt).abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// Checks weak diagonal dominance (`|a_ii| ≥ Σ_{j≠i} |a_ij|` for every
    /// row), the defining property of a conductance matrix with grounded
    /// supplies.
    pub fn is_diagonally_dominant(&self, tol: f64) -> bool {
        for r in 0..self.dim {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in self.row(r) {
                if c == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            if diag + tol < off {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn laplacian_path(n: usize) -> CsrMatrix {
        // Path-graph Laplacian + identity: SPD, tridiagonal.
        let mut b = CooBuilder::new(n);
        for i in 0..n {
            b.stamp_to_ground(i, 1.0);
        }
        for i in 0..n - 1 {
            b.stamp_conductance(i, i + 1, 1.0);
        }
        b.into_csr().expect("valid matrix")
    }

    #[test]
    fn builder_sums_duplicates() {
        let mut b = CooBuilder::new(1);
        b.add(0, 0, 1.5);
        b.add(0, 0, 2.5);
        let m = b.into_csr().unwrap();
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn builder_drops_exact_cancellations_but_keeps_node_grounded() {
        let mut b = CooBuilder::new(1);
        b.add(0, 0, 1.0);
        b.add(0, 0, -1.0);
        // Summed to zero -> entry dropped -> row empty -> floating node.
        assert_eq!(b.into_csr(), Err(SolverError::FloatingNode { row: 0 }));
    }

    #[test]
    fn builder_rejects_out_of_bounds() {
        let mut b = CooBuilder::new(2);
        b.add(0, 5, 1.0);
        assert!(matches!(
            b.into_csr(),
            Err(SolverError::IndexOutOfBounds { col: 5, .. })
        ));
    }

    #[test]
    fn builder_rejects_nan() {
        let mut b = CooBuilder::new(1);
        b.add(0, 0, f64::NAN);
        assert!(matches!(
            b.into_csr(),
            Err(SolverError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn builder_detects_floating_node() {
        let mut b = CooBuilder::new(3);
        b.add(0, 0, 1.0);
        b.add(2, 2, 1.0);
        assert_eq!(b.into_csr(), Err(SolverError::FloatingNode { row: 1 }));
    }

    #[test]
    fn stamp_conductance_is_symmetric_and_dominant() {
        let m = laplacian_path(8);
        assert!(m.is_symmetric(1e-12));
        assert!(m.is_diagonally_dominant(1e-12));
    }

    #[test]
    fn get_returns_zero_for_structural_zero() {
        let m = laplacian_path(4);
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(0, 0), 2.0); // ground 1.0 + one neighbour 1.0
        assert_eq!(m.get(1, 1), 3.0); // ground 1.0 + two neighbours
    }

    #[test]
    fn mul_vec_matches_dense_expansion() {
        let m = laplacian_path(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = m.mul_vec(&x).unwrap();
        for r in 0..5 {
            let mut expect = 0.0;
            for c in 0..5 {
                expect += m.get(r, c) * x[c];
            }
            assert!((y[r] - expect).abs() < 1e-12, "row {r}");
        }
    }

    #[test]
    fn mul_vec_rejects_wrong_length() {
        let m = laplacian_path(3);
        assert!(matches!(
            m.mul_vec(&[1.0, 2.0]),
            Err(SolverError::DimensionMismatch {
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn identity_roundtrips_vectors() {
        let m = CsrMatrix::identity(4);
        let x = [9.0, -1.0, 0.5, 2.0];
        assert_eq!(m.mul_vec(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn diagonal_extraction() {
        let m = laplacian_path(3);
        assert_eq!(m.diagonal(), vec![2.0, 3.0, 2.0]);
    }

    #[test]
    fn asymmetric_matrix_detected() {
        let mut b = CooBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(1, 1, 1.0);
        b.add(0, 1, -0.5);
        // no (1,0) entry
        let m = b.into_csr().unwrap();
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn threaded_mul_vec_matches_sequential_bitwise() {
        // Above the parallel threshold: a long chain exercises the real
        // row-partitioned path; per-row sums are order-identical, so the
        // results must match bit for bit.
        let n = crate::PARALLEL_SPMV_MIN_DIM + 37;
        let m = laplacian_path(n);
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 1e-3).collect();
        let mut seq = vec![0.0; n];
        m.mul_vec_into(&x, &mut seq);
        for threads in [1, 2, 3, 8] {
            let mut par = vec![0.0; n];
            m.mul_vec_into_threaded(&x, &mut par, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn threaded_mul_vec_small_matrix_takes_sequential_path() {
        let m = laplacian_path(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut seq = vec![0.0; 5];
        m.mul_vec_into(&x, &mut seq);
        let mut par = vec![0.0; 5];
        m.mul_vec_into_threaded(&x, &mut par, 8);
        assert_eq!(par, seq);
    }

    #[test]
    fn row_iterator_is_sorted_by_column() {
        let mut b = CooBuilder::new(3);
        b.add(1, 2, 3.0);
        b.add(1, 0, 1.0);
        b.add(1, 1, 2.0);
        b.add(0, 0, 1.0);
        b.add(2, 2, 1.0);
        let m = b.into_csr().unwrap();
        let row: Vec<_> = m.row(1).collect();
        assert_eq!(row, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
    }
}
