//! Sparse and dense linear solvers for resistive-mesh power-grid analysis.
//!
//! This crate is the numerical substrate of the `pi3d` workspace. A DC
//! power-grid (R-Mesh) reduces, after nodal analysis, to a symmetric
//! positive-definite (SPD) linear system `G·v = i`, where `G` is the nodal
//! conductance matrix, `i` the vector of injected currents, and `v` the
//! unknown node voltages. Two solution paths are provided:
//!
//! * [`CsrMatrix`] + [`CgSolver`] — sparse storage with a preconditioned
//!   conjugate-gradient iteration. This is the fast "R-Mesh" path used for
//!   all production analysis, playing the role HSPICE plays in the paper.
//! * [`DenseMatrix`] + [`CholeskyFactor`] — a dense direct factorization
//!   used as the *golden reference* when validating the R-Mesh results
//!   (the stand-in for Cadence Encounter Power System in Figure 4 of the
//!   paper).
//!
//! # Examples
//!
//! Solve a tiny resistor-divider system:
//!
//! ```
//! use pi3d_solver::{CgSolver, CooBuilder, Preconditioner};
//!
//! # fn main() -> Result<(), pi3d_solver::SolverError> {
//! // Two unknown nodes joined by 1 S, each tied to ground by 1 S:
//! //   [ 2 -1 ] [v0]   [1]
//! //   [-1  2 ] [v1] = [0]
//! let mut builder = CooBuilder::new(2);
//! builder.add(0, 0, 2.0);
//! builder.add(1, 1, 2.0);
//! builder.add(0, 1, -1.0);
//! builder.add(1, 0, -1.0);
//! let matrix = builder.into_csr()?;
//!
//! let solver = CgSolver::new();
//! let solution = solver.solve(&matrix, &[1.0, 0.0], Preconditioner::Jacobi)?;
//! assert!((solution.x[0] - 2.0 / 3.0).abs() < 1e-9);
//! assert!((solution.x[1] - 1.0 / 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Index-based loops are the clearer idiom in the numeric kernels below
// (parallel arrays with shared indices).
#![allow(clippy::needless_range_loop)]
#![warn(missing_debug_implementations)]
// User-reachable failures must surface as typed errors, not panics.
#![warn(clippy::unwrap_used)]

mod budget;
mod cg;
mod csr;
mod dense;
mod error;
mod multigrid;
mod parallel;
mod precond;
mod prepared;
mod stencil;
pub mod vecops;

pub use budget::{Interruption, SolveBudget};
pub use cg::{CgSolution, CgSolver};
pub use csr::{CooBuilder, CsrMatrix};
pub use dense::{CholeskyFactor, DenseMatrix};
pub use error::SolverError;
pub use multigrid::Multigrid;
pub use parallel::parallel_map;
pub use precond::{AppliedPreconditioner, IncompleteCholesky, JacobiScaling, Preconditioner};
pub use prepared::{
    calibrated_spmv_min_dim, load_spmv_calibration, prime_spmv_calibration, recalibrate_spmv,
    store_spmv_calibration, PreparedSystem, SPMV_CALIBRATION_SCHEMA,
};
pub use stencil::{Operator, StencilGrid, StencilOperator};

/// Minimum matrix dimension for the chunked-parallel SpMV path of
/// [`CsrMatrix::mul_vec_into_threaded`]. Below this, per-call thread-spawn
/// overhead (tens of microseconds per scoped worker) exceeds the O(nnz)
/// multiply itself — a default-resolution stack mesh is ~10k nodes with
/// ~7 entries per row — so small systems always take the sequential path.
pub const PARALLEL_SPMV_MIN_DIM: usize = 16_384;
