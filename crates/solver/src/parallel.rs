//! Deterministic fan-out, re-exported from its shared home.
//!
//! `parallel_map` started here for the batch-RHS solver work and is now
//! hosted by [`pi3d_telemetry::par`] so `pi3d-core` and `pi3d-memsim` can
//! fan out policy sweeps without a solver dependency. This module keeps
//! the historical `pi3d_solver::parallel_map` path working.

pub use pi3d_telemetry::par::parallel_map;
