use crate::budget::{Interruption, SolveBudget};
use crate::precond::AppliedPreconditioner;
use crate::stencil::Operator;
use crate::vecops;
use crate::{CsrMatrix, Preconditioner, SolverError};

/// The deadline clock is read every this many CG iterations; cancellation
/// is polled every iteration (a single atomic load).
const DEADLINE_POLL_STRIDE: usize = 16;

/// Iterations per flight-recorder trace slice: individual CG iterations
/// are too fine to trace one-by-one, so the iteration loop emits one
/// `cg_iters[a..b)` slice (plus a `cg_relres` counter sample) per block.
#[cfg(feature = "telemetry")]
const CG_TRACE_BLOCK: usize = 64;

/// Result of a successful conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector `x` with `A·x ≈ b`.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖₂ / ‖b‖₂`.
    pub relative_residual: f64,
    /// Relative residual after each iteration (empty when the crate's
    /// `telemetry` feature is disabled).
    pub residual_trace: Vec<f64>,
}

#[cfg(feature = "telemetry")]
fn record_solve(iterations: usize, relres: f64, trace: &[f64]) {
    use pi3d_telemetry::{metrics, report};
    metrics::counter("solver.cg.solves").incr(1);
    metrics::counter("solver.cg.iterations").incr(iterations as u64);
    metrics::histogram("solver.cg.iterations_per_solve").record(iterations as u64);
    report::record_convergence("cg", iterations as u64, relres, trace);
    pi3d_telemetry::debug!("cg converged: {iterations} iterations, relres {relres:.3e}");
}

/// Preconditioned conjugate-gradient solver for SPD systems.
///
/// This is the production IR-drop solve path: the nodal conductance matrix
/// of an R-Mesh is SPD once supply nodes are eliminated, and CG converges in
/// `O(√κ)` iterations. Construction is cheap; the solver only holds
/// configuration.
///
/// # Examples
///
/// ```
/// use pi3d_solver::{CgSolver, CooBuilder, Preconditioner};
///
/// # fn main() -> Result<(), pi3d_solver::SolverError> {
/// let mut b = CooBuilder::new(3);
/// for i in 0..3 {
///     b.stamp_to_ground(i, 1.0);
/// }
/// b.stamp_conductance(0, 1, 1.0);
/// b.stamp_conductance(1, 2, 1.0);
/// let a = b.into_csr()?;
/// let sol = CgSolver::new()
///     .with_tolerance(1e-12)
///     .solve(&a, &[1.0, 0.0, 0.0], Preconditioner::IncompleteCholesky)?;
/// assert!(sol.relative_residual < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolver {
    tolerance: f64,
    max_iterations: usize,
    budget: SolveBudget,
}

impl Default for CgSolver {
    fn default() -> Self {
        CgSolver {
            tolerance: 1e-10,
            max_iterations: 20_000,
            budget: SolveBudget::unlimited(),
        }
    }
}

impl CgSolver {
    /// Creates a solver with the default tolerance (`1e-10`) and iteration
    /// cap (`20_000`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relative-residual convergence tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not strictly positive and finite.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance.is_finite(),
            "tolerance must be positive"
        );
        self.tolerance = tolerance;
        self
    }

    /// Sets the maximum iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        assert!(max_iterations > 0, "max_iterations must be nonzero");
        self.max_iterations = max_iterations;
        self
    }

    /// Attaches a [`SolveBudget`] (deadline and/or cancel token) polled by
    /// the iteration loop. The default budget is unlimited.
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Configured relative tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Configured solve budget.
    pub fn budget(&self) -> &SolveBudget {
        &self.budget
    }

    /// Configured iteration cap.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Solves `A·x = b` for SPD `A` starting from the zero vector.
    ///
    /// # Errors
    ///
    /// * [`SolverError::DimensionMismatch`] if `b.len() != a.dim()`.
    /// * [`SolverError::NotPositiveDefinite`] if preconditioner construction
    ///   fails or a negative curvature direction is encountered (the matrix
    ///   was not SPD).
    /// * [`SolverError::ConvergenceFailure`] if the iteration cap is hit.
    pub fn solve(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        preconditioner: Preconditioner,
    ) -> Result<CgSolution, SolverError> {
        self.solve_with_guess(a, b, None, preconditioner)
    }

    /// Solves `A·x = b` starting from a caller-supplied initial guess.
    ///
    /// Warm starts matter in sweep workloads (the optimizer re-solves the
    /// same mesh with slightly different loads), where the previous solution
    /// typically halves the iteration count.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve), plus [`SolverError::DimensionMismatch`]
    /// if the guess has the wrong length.
    pub fn solve_with_guess(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        guess: Option<&[f64]>,
        preconditioner: Preconditioner,
    ) -> Result<CgSolution, SolverError> {
        let m = {
            #[cfg(feature = "telemetry")]
            let _precond_span = pi3d_telemetry::span::span("precond_setup");
            AppliedPreconditioner::build(preconditioner, a)?
        };
        self.solve_prepared(a, b, guess, &m, 1, crate::PARALLEL_SPMV_MIN_DIM)
    }

    /// Solves `A·x = b` with an already-built preconditioner, applying the
    /// system through any [`Operator`] — general CSR storage or the
    /// matrix-free stencil form — with up to `threads` worker threads for
    /// the SpMV when the system has at least `min_parallel_dim` rows
    /// (both operator implementations are bit-identical across thread
    /// counts, so the cutover only affects speed).
    ///
    /// This is the factor-once/solve-many entry point shared by
    /// [`solve_with_guess`](Self::solve_with_guess) (which builds `m`
    /// per call) and [`PreparedSystem`](crate::PreparedSystem) (which
    /// builds it once per matrix): the CG iteration itself is identical,
    /// so the two paths produce bit-identical solutions.
    ///
    /// # Errors
    ///
    /// As for [`solve_with_guess`](Self::solve_with_guess). The caller is
    /// responsible for `m` matching `a`; a mismatched preconditioner
    /// panics on dimension asserts or fails to converge.
    pub fn solve_prepared(
        &self,
        a: &dyn Operator,
        b: &[f64],
        guess: Option<&[f64]>,
        m: &AppliedPreconditioner,
        threads: usize,
        min_parallel_dim: usize,
    ) -> Result<CgSolution, SolverError> {
        let n = a.dim();
        if b.len() != n {
            return Err(SolverError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        if let Some(g) = guess {
            if g.len() != n {
                return Err(SolverError::DimensionMismatch {
                    expected: n,
                    found: g.len(),
                });
            }
        }

        #[cfg(feature = "telemetry")]
        let _solve_span = pi3d_telemetry::span::span("cg_solve");

        // Fail fast when the budget already expired: batch callers drain
        // their remaining right-hand sides in O(1) each instead of paying
        // for the initial SpMV and preconditioner application.
        if let Some(kind) = self.budget.interruption() {
            let x = guess.map(<[f64]>::to_vec).unwrap_or_else(|| vec![0.0; n]);
            return Err(interruption_error(kind, x, 0, f64::INFINITY, Vec::new()));
        }

        let norm_b = vecops::norm2(b);
        if norm_b == 0.0 {
            return Ok(CgSolution {
                x: vec![0.0; n],
                iterations: 0,
                relative_residual: 0.0,
                residual_trace: Vec::new(),
            });
        }

        let mut x = guess.map(<[f64]>::to_vec).unwrap_or_else(|| vec![0.0; n]);
        // r = b - A·x
        let mut r = vec![0.0; n];
        a.apply_into_threaded(&x, &mut r, threads, min_parallel_dim);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut z = vec![0.0; n];
        {
            #[cfg(feature = "telemetry")]
            let _apply_slice = pi3d_telemetry::trace::span("solver", "precond_apply");
            m.apply(&r, &mut z);
        }
        let mut p = z.clone();
        let mut rz = vecops::dot(&r, &z);
        let mut ap = vec![0.0; n];

        // Pre-sized to a typical preconditioned iteration count so the
        // per-iteration push below does not reallocate on the hot path.
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut residual_trace: Vec<f64> =
            Vec::with_capacity(if cfg!(feature = "telemetry") { 128 } else { 0 });

        let mut relres = vecops::norm2(&r) / norm_b;
        if relres <= self.tolerance {
            #[cfg(feature = "telemetry")]
            {
                residual_trace.push(relres);
                record_solve(0, relres, &residual_trace);
            }
            return Ok(CgSolution {
                x,
                iterations: 0,
                relative_residual: relres,
                residual_trace,
            });
        }

        #[cfg(feature = "telemetry")]
        let _iter_span = pi3d_telemetry::span::span("cg_iterations");
        #[cfg(feature = "telemetry")]
        let mut _iter_block = pi3d_telemetry::trace::span_with("solver", || {
            format!("cg_iters[1..{})", 1 + CG_TRACE_BLOCK)
        });

        for iter in 1..=self.max_iterations {
            #[cfg(feature = "telemetry")]
            if iter > 1 && (iter - 1) % CG_TRACE_BLOCK == 0 {
                // Close the finished block before opening the next so
                // sibling slices never overlap in the trace.
                _iter_block = pi3d_telemetry::trace::noop();
                _iter_block = pi3d_telemetry::trace::span_with("solver", || {
                    format!("cg_iters[{iter}..{})", iter + CG_TRACE_BLOCK)
                });
                pi3d_telemetry::trace::counter("solver", "cg_relres", relres);
            }
            if self.budget.cancelled() {
                return Err(interruption_error(
                    Interruption::Cancelled,
                    x,
                    iter - 1,
                    relres,
                    residual_trace,
                ));
            }
            if (iter == 1 || iter % DEADLINE_POLL_STRIDE == 0) && self.budget.deadline_exceeded() {
                return Err(interruption_error(
                    Interruption::DeadlineExceeded,
                    x,
                    iter - 1,
                    relres,
                    residual_trace,
                ));
            }
            a.apply_into_threaded(&p, &mut ap, threads, min_parallel_dim);
            let pap = vecops::dot(&p, &ap);
            if pap <= 0.0 || !pap.is_finite() {
                return Err(SolverError::NotPositiveDefinite {
                    index: iter,
                    value: pap,
                });
            }
            let alpha = rz / pap;
            vecops::axpy(alpha, &p, &mut x);
            vecops::axpy(-alpha, &ap, &mut r);

            relres = vecops::norm2(&r) / norm_b;
            #[cfg(feature = "telemetry")]
            residual_trace.push(relres);
            if relres <= self.tolerance {
                #[cfg(feature = "telemetry")]
                record_solve(iter, relres, &residual_trace);
                return Ok(CgSolution {
                    x,
                    iterations: iter,
                    relative_residual: relres,
                    residual_trace,
                });
            }

            {
                #[cfg(feature = "telemetry")]
                let _apply_slice = pi3d_telemetry::trace::span("solver", "precond_apply");
                m.apply(&r, &mut z);
            }
            let rz_next = vecops::dot(&r, &z);
            let beta = rz_next / rz;
            rz = rz_next;
            vecops::xpby(&z, beta, &mut p);
        }

        #[cfg(feature = "telemetry")]
        {
            pi3d_telemetry::metrics::counter("solver.cg.failures").incr(1);
            pi3d_telemetry::warn!(
                "cg failed to converge: {} iterations, relres {relres:.3e} > tol {:.1e}",
                self.max_iterations,
                self.tolerance
            );
        }
        // The final iterate is still the best available approximation;
        // hand it back so callers can warm-start a retry or fall back to
        // a direct solve instead of discarding the work.
        Err(SolverError::NonConverged {
            iterations: self.max_iterations,
            residual: relres,
            tolerance: self.tolerance,
            partial: Box::new(CgSolution {
                x,
                iterations: self.max_iterations,
                relative_residual: relres,
                residual_trace,
            }),
        })
    }
}

/// Builds the typed interruption error carrying the partial iterate.
fn interruption_error(
    kind: Interruption,
    x: Vec<f64>,
    iterations: usize,
    residual: f64,
    residual_trace: Vec<f64>,
) -> SolverError {
    #[cfg(feature = "telemetry")]
    pi3d_telemetry::metrics::counter(match kind {
        Interruption::Cancelled => "solver.cg.cancelled",
        Interruption::DeadlineExceeded => "solver.cg.deadline_exceeded",
    })
    .incr(1);
    let partial = Box::new(CgSolution {
        x,
        iterations,
        relative_residual: residual,
        residual_trace,
    });
    match kind {
        Interruption::Cancelled => SolverError::Cancelled {
            iterations,
            residual,
            partial,
        },
        Interruption::DeadlineExceeded => SolverError::DeadlineExceeded {
            iterations,
            residual,
            partial,
        },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{CooBuilder, DenseMatrix};

    fn grid_2d(nx: usize, ny: usize, ground_g: f64) -> CsrMatrix {
        // 2D grid with every node weakly grounded (models bump tie-offs).
        let idx = |x: usize, y: usize| y * nx + x;
        let mut b = CooBuilder::new(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                b.stamp_to_ground(idx(x, y), ground_g);
                if x + 1 < nx {
                    b.stamp_conductance(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    b.stamp_conductance(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        b.into_csr().unwrap()
    }

    #[test]
    fn cg_matches_direct_solve_on_grid() {
        let a = grid_2d(8, 8, 0.05);
        let b: Vec<f64> = (0..64).map(|i| 1e-3 * ((i % 7) as f64 + 1.0)).collect();
        let dense = DenseMatrix::from_csr(&a);
        let exact = dense.cholesky().unwrap().solve(&b).unwrap();

        for pc in [
            Preconditioner::Identity,
            Preconditioner::Jacobi,
            Preconditioner::IncompleteCholesky,
        ] {
            let sol = CgSolver::new()
                .with_tolerance(1e-12)
                .solve(&a, &b, pc)
                .unwrap();
            for i in 0..64 {
                assert!(
                    (sol.x[i] - exact[i]).abs() < 1e-8,
                    "{pc:?}: node {i} differs: {} vs {}",
                    sol.x[i],
                    exact[i]
                );
            }
        }
    }

    /// A spatially non-uniform load (hotspot in one corner) so that the
    /// solution is far from the constant vector and CG needs real work.
    fn hotspot_load(nx: usize, ny: usize) -> Vec<f64> {
        let mut b = vec![0.0; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let d = ((x * x + y * y) as f64).sqrt();
                b[y * nx + x] = 1e-3 / (1.0 + d * d);
            }
        }
        b
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let a = grid_2d(16, 16, 0.01);
        let b = hotspot_load(16, 16);
        let none = CgSolver::new()
            .solve(&a, &b, Preconditioner::Identity)
            .unwrap();
        let ic = CgSolver::new()
            .solve(&a, &b, Preconditioner::IncompleteCholesky)
            .unwrap();
        assert!(
            ic.iterations < none.iterations,
            "IC(0) ({}) should beat plain CG ({})",
            ic.iterations,
            none.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let a = grid_2d(4, 4, 0.1);
        let sol = CgSolver::new()
            .solve(&a, &[0.0; 16], Preconditioner::Jacobi)
            .unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_converges_in_fewer_iterations() {
        let a = grid_2d(12, 12, 0.02);
        let b = hotspot_load(12, 12);
        let cold = CgSolver::new()
            .solve(&a, &b, Preconditioner::Jacobi)
            .unwrap();
        // Perturb the load slightly and re-solve from the previous solution.
        let b2: Vec<f64> = b.iter().map(|v| v * 1.01).collect();
        let warm = CgSolver::new()
            .solve_with_guess(&a, &b2, Some(&cold.x), Preconditioner::Jacobi)
            .unwrap();
        let cold2 = CgSolver::new()
            .solve(&a, &b2, Preconditioner::Jacobi)
            .unwrap();
        assert!(warm.iterations < cold2.iterations);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = grid_2d(2, 2, 1.0);
        let err = CgSolver::new()
            .solve(&a, &[1.0], Preconditioner::Jacobi)
            .unwrap_err();
        assert!(matches!(
            err,
            SolverError::DimensionMismatch {
                expected: 4,
                found: 1
            }
        ));
    }

    #[test]
    fn indefinite_matrix_detected_during_iteration() {
        let mut b = CooBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(1, 1, 1.0);
        b.add(0, 1, -3.0);
        b.add(1, 0, -3.0);
        let a = b.into_csr().unwrap();
        let err = CgSolver::new()
            .solve(&a, &[1.0, 1.0], Preconditioner::Identity)
            .unwrap_err();
        assert!(matches!(err, SolverError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn iteration_cap_produces_convergence_failure() {
        let a = grid_2d(16, 16, 1e-6);
        let b = hotspot_load(16, 16);
        let err = CgSolver::new()
            .with_tolerance(1e-14)
            .with_max_iterations(2)
            .solve(&a, &b, Preconditioner::Identity)
            .unwrap_err();
        let SolverError::NonConverged {
            iterations: 2,
            partial,
            ..
        } = err
        else {
            panic!("expected NonConverged, got {err:?}");
        };
        // The partial iterate is preserved, not discarded.
        assert_eq!(partial.x.len(), 256);
        assert!(partial.x.iter().any(|&v| v != 0.0));
        assert_eq!(partial.iterations, 2);
        #[cfg(feature = "telemetry")]
        assert_eq!(partial.residual_trace.len(), 2);
    }

    #[test]
    fn builder_style_configuration() {
        let s = CgSolver::new().with_tolerance(1e-6).with_max_iterations(50);
        assert_eq!(s.tolerance(), 1e-6);
        assert_eq!(s.max_iterations(), 50);
        assert!(s.budget().is_unlimited());
    }

    #[test]
    fn cancelled_solve_returns_partial_iterate() {
        use pi3d_telemetry::CancelToken;
        let a = grid_2d(16, 16, 0.01);
        let b = hotspot_load(16, 16);
        let token = CancelToken::new();
        token.cancel();
        let err = CgSolver::new()
            .with_budget(SolveBudget::unlimited().with_cancel(token))
            .solve(&a, &b, Preconditioner::Jacobi)
            .unwrap_err();
        let SolverError::Cancelled {
            iterations,
            partial,
            ..
        } = err
        else {
            panic!("expected Cancelled, got {err:?}");
        };
        assert_eq!(iterations, 0);
        assert_eq!(partial.x.len(), 256);
    }

    #[test]
    fn expired_deadline_stops_the_solve() {
        let a = grid_2d(16, 16, 0.01);
        let b = hotspot_load(16, 16);
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let err = CgSolver::new()
            .with_budget(SolveBudget::unlimited().with_deadline(past))
            .solve(&a, &b, Preconditioner::Jacobi)
            .unwrap_err();
        assert!(
            matches!(err, SolverError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn mid_solve_cancellation_preserves_progress() {
        // Cancel from another thread while a deliberately slow solve
        // (tight tolerance, identity preconditioner) is iterating; the
        // typed error must carry the in-flight iterate.
        use pi3d_telemetry::CancelToken;
        let a = grid_2d(24, 24, 1e-6);
        let b = hotspot_load(24, 24);
        let token = CancelToken::new();
        let solver = CgSolver::new()
            .with_tolerance(1e-15)
            .with_budget(SolveBudget::unlimited().with_cancel(token.clone()));
        let result = std::thread::scope(|scope| {
            let handle = scope.spawn(|| solver.solve(&a, &b, Preconditioner::Identity));
            std::thread::sleep(std::time::Duration::from_millis(10));
            token.cancel();
            handle.join().expect("solver thread must not panic")
        });
        match result {
            Err(SolverError::Cancelled { partial, .. }) => {
                assert_eq!(partial.x.len(), 24 * 24);
            }
            // The grid is small enough that the solve may finish (or hit
            // the NonConverged cap) before the cancel lands; both are
            // legitimate races, the test only forbids hangs and panics.
            Ok(_) | Err(SolverError::NonConverged { .. }) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
}
