use std::sync::Arc;

use crate::multigrid::Multigrid;
use crate::stencil::{StencilGrid, StencilOperator};
use crate::{CsrMatrix, SolverError};

/// Preconditioner selection for [`CgSolver`](crate::CgSolver).
///
/// Power-grid conductance matrices are SPD and strongly diagonally dominant,
/// so Jacobi is usually sufficient; IC(0) roughly halves iteration counts on
/// ill-conditioned meshes (very low metal usage) at the cost of a
/// factorization pass. Multigrid keeps iteration counts ~flat as the mesh
/// is refined, but needs the stack's grid geometry to build (see
/// [`PreparedSystem::with_geometry`](crate::PreparedSystem::with_geometry)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Preconditioner {
    /// No preconditioning (plain CG).
    Identity,
    /// Diagonal (Jacobi) scaling. The default.
    #[default]
    Jacobi,
    /// Zero fill-in incomplete Cholesky, IC(0).
    IncompleteCholesky,
    /// Geometric multigrid V-cycle (see [`Multigrid`]). Requires grid
    /// geometry at build time.
    Multigrid,
}

/// A concrete, applied preconditioner `M ≈ A` supporting `z = M⁻¹·r`.
///
/// Building one (in particular the IC(0) factorization) is the expensive,
/// matrix-dependent part of a preconditioned CG solve. An
/// `AppliedPreconditioner` is immutable and `Sync` once built, so it can be
/// constructed once per matrix and shared across many solves and threads —
/// the factor-once/solve-many pattern exposed by
/// [`PreparedSystem`](crate::PreparedSystem).
pub enum AppliedPreconditioner {
    /// No preconditioning.
    Identity,
    /// Diagonal (Jacobi) scaling.
    Jacobi(JacobiScaling),
    /// Zero fill-in incomplete Cholesky factors.
    Ic0(IncompleteCholesky),
    /// Geometric multigrid V-cycle hierarchy.
    Multigrid(Multigrid),
}

impl std::fmt::Debug for AppliedPreconditioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppliedPreconditioner::Identity => f.write_str("AppliedPreconditioner::Identity"),
            AppliedPreconditioner::Jacobi(_) => f.write_str("AppliedPreconditioner::Jacobi"),
            AppliedPreconditioner::Ic0(_) => f.write_str("AppliedPreconditioner::Ic0"),
            AppliedPreconditioner::Multigrid(_) => f.write_str("AppliedPreconditioner::Multigrid"),
        }
    }
}

impl AppliedPreconditioner {
    /// Builds the concrete preconditioner of `kind` for the matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotPositiveDefinite`] if the diagonal scaling
    /// or IC(0) factorization breaks down, and
    /// [`SolverError::MissingGridGeometry`] for
    /// [`Preconditioner::Multigrid`], which needs the grid geometry only
    /// [`build_with_geometry`](Self::build_with_geometry) supplies.
    pub fn build(kind: Preconditioner, a: &CsrMatrix) -> Result<Self, SolverError> {
        match kind {
            Preconditioner::Multigrid => Err(SolverError::MissingGridGeometry),
            _ => Self::build_with_geometry(kind, a, &[], None),
        }
    }

    /// Builds the concrete preconditioner of `kind` for the matrix `a`,
    /// supplying the stack's grid geometry (and, when one was extracted,
    /// the matrix-free stencil operator to share for fine-level applies)
    /// so [`Preconditioner::Multigrid`] can construct its hierarchy.
    /// Other kinds ignore the geometry.
    ///
    /// # Errors
    ///
    /// As [`build`](Self::build); multigrid additionally reports
    /// [`SolverError::MissingGridGeometry`] when `grids` do not tile the
    /// matrix dimension.
    pub fn build_with_geometry(
        kind: Preconditioner,
        a: &CsrMatrix,
        grids: &[StencilGrid],
        stencil: Option<&Arc<StencilOperator>>,
    ) -> Result<Self, SolverError> {
        #[cfg(feature = "telemetry")]
        {
            pi3d_telemetry::metrics::counter("solver.precond.builds").incr(1);
            pi3d_telemetry::trace!("building {kind:?} preconditioner for n={}", a.dim());
        }
        match kind {
            Preconditioner::Identity => Ok(AppliedPreconditioner::Identity),
            Preconditioner::Jacobi => Ok(AppliedPreconditioner::Jacobi(JacobiScaling::new(a)?)),
            Preconditioner::IncompleteCholesky => {
                Ok(AppliedPreconditioner::Ic0(IncompleteCholesky::new(a)?))
            }
            Preconditioner::Multigrid => Ok(AppliedPreconditioner::Multigrid(Multigrid::new(
                a,
                grids,
                stencil.cloned(),
            )?)),
        }
    }

    /// Applies `z = M⁻¹·r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `z` length differs from the matrix dimension the
    /// preconditioner was built for.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            AppliedPreconditioner::Identity => z.copy_from_slice(r),
            AppliedPreconditioner::Jacobi(j) => j.apply(r, z),
            AppliedPreconditioner::Ic0(ic) => ic.apply(r, z),
            AppliedPreconditioner::Multigrid(mg) => mg.apply(r, z),
        }
    }
}

/// Diagonal (Jacobi) preconditioner: `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiScaling {
    inv_diag: Vec<f64>,
}

impl JacobiScaling {
    /// Builds the preconditioner from the diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotPositiveDefinite`] if any diagonal entry is
    /// not strictly positive.
    pub fn new(a: &CsrMatrix) -> Result<Self, SolverError> {
        let diag = a.diagonal();
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 || !d.is_finite() {
                return Err(SolverError::NotPositiveDefinite { index: i, value: d });
            }
        }
        Ok(JacobiScaling {
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
        })
    }

    /// Applies `z = diag(A)⁻¹·r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `z` length differs from the matrix dimension.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len());
        assert_eq!(z.len(), self.inv_diag.len());
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }
}

/// Zero fill-in incomplete Cholesky factorization, IC(0).
///
/// Factors `A ≈ L·Lᵀ` where `L` keeps exactly the sparsity pattern of the
/// lower triangle of `A`. Application solves the two triangular systems.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    dim: usize,
    // Lower-triangular CSR (including diagonal, stored last in each row).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl IncompleteCholesky {
    /// Computes the IC(0) factorization of an SPD sparse matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotPositiveDefinite`] if a pivot breakdown
    /// occurs (possible for IC(0) even on SPD matrices, though rare for
    /// diagonally dominant grids).
    pub fn new(a: &CsrMatrix) -> Result<Self, SolverError> {
        let n = a.dim();
        // Extract the lower triangle pattern (columns sorted; diagonal last).
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        row_ptr.push(0);
        for r in 0..n {
            for (c, v) in a.row(r) {
                if c <= r {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }

        // In-place IKJ-style factorization restricted to the pattern.
        // For each row i, for each k < i in pattern: l_ik /= l_kk, then
        // update remaining entries of row i that also exist in row k.
        for i in 0..n {
            let (lo_i, hi_i) = (row_ptr[i], row_ptr[i + 1]);
            for ki in lo_i..hi_i {
                let k = col_idx[ki] as usize;
                if k == i {
                    // Diagonal: subtract squares of prior entries, sqrt.
                    let mut d = values[ki];
                    for kk in lo_i..ki {
                        d -= values[kk] * values[kk];
                    }
                    if d <= 0.0 || !d.is_finite() {
                        return Err(SolverError::NotPositiveDefinite { index: i, value: d });
                    }
                    values[ki] = d.sqrt();
                } else {
                    // Off-diagonal l_ik = (a_ik - Σ_{j<k} l_ij·l_kj) / l_kk
                    let mut v = values[ki];
                    let (lo_k, hi_k) = (row_ptr[k], row_ptr[k + 1]);
                    // Merge-walk the two sorted rows over columns < k.
                    let mut pi = lo_i;
                    let mut pk = lo_k;
                    while pi < ki && pk < hi_k - 1 {
                        let ci = col_idx[pi];
                        let ck = col_idx[pk];
                        match ci.cmp(&ck) {
                            std::cmp::Ordering::Less => pi += 1,
                            std::cmp::Ordering::Greater => pk += 1,
                            std::cmp::Ordering::Equal => {
                                v -= values[pi] * values[pk];
                                pi += 1;
                                pk += 1;
                            }
                        }
                    }
                    let diag_k = values[hi_k - 1];
                    values[ki] = v / diag_k;
                }
            }
        }

        Ok(IncompleteCholesky {
            dim: n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Applies `z = (L·Lᵀ)⁻¹·r` via forward/backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `z` length differs from the matrix dimension.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.dim);
        assert_eq!(z.len(), self.dim);
        // Forward: L·y = r (diagonal stored last in each row).
        z.copy_from_slice(r);
        for i in 0..self.dim {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut acc = z[i];
            for k in lo..hi - 1 {
                acc -= self.values[k] * z[self.col_idx[k] as usize];
            }
            z[i] = acc / self.values[hi - 1];
        }
        // Backward: Lᵀ·z = y. Traverse rows in reverse, scattering.
        for i in (0..self.dim).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            z[i] /= self.values[hi - 1];
            let zi = z[i];
            for k in lo..hi - 1 {
                z[self.col_idx[k] as usize] -= self.values[k] * zi;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    fn grid_matrix(n: usize) -> CsrMatrix {
        // 1D chain grounded at both ends.
        let mut b = CooBuilder::new(n);
        b.stamp_to_ground(0, 2.0);
        b.stamp_to_ground(n - 1, 2.0);
        for i in 0..n - 1 {
            b.stamp_conductance(i, i + 1, 1.0);
        }
        b.into_csr().unwrap()
    }

    #[test]
    fn jacobi_inverts_diagonal() {
        let a = grid_matrix(4);
        let j = JacobiScaling::new(&a).unwrap();
        let r = vec![3.0, 2.0, 2.0, 3.0];
        let mut z = vec![0.0; 4];
        j.apply(&r, &mut z);
        for i in 0..4 {
            assert!((z[i] * a.get(i, i) - r[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_rejects_nonpositive_diagonal() {
        let mut b = CooBuilder::new(2);
        b.add(0, 0, -1.0);
        b.add(1, 1, 1.0);
        let a = b.into_csr().unwrap();
        assert!(matches!(
            JacobiScaling::new(&a),
            Err(SolverError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn ic0_on_tridiagonal_is_exact() {
        // For a tridiagonal SPD matrix IC(0) equals the full Cholesky factor,
        // so applying it must solve the system exactly.
        let a = grid_matrix(10);
        let ic = IncompleteCholesky::new(&a).unwrap();
        let r: Vec<f64> = (0..10).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let mut z = vec![0.0; 10];
        ic.apply(&r, &mut z);
        let az = a.mul_vec(&z).unwrap();
        for i in 0..10 {
            assert!(
                (az[i] - r[i]).abs() < 1e-10,
                "residual at {i}: {}",
                az[i] - r[i]
            );
        }
    }

    #[test]
    fn ic0_application_is_spd_like() {
        // z = M^-1 r should satisfy r.z > 0 for r != 0 (M SPD).
        let a = grid_matrix(16);
        let ic = IncompleteCholesky::new(&a).unwrap();
        let r: Vec<f64> = (0..16)
            .map(|i| if i % 3 == 0 { -1.0 } else { 0.5 })
            .collect();
        let mut z = vec![0.0; 16];
        ic.apply(&r, &mut z);
        let dot: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        assert!(dot > 0.0);
    }

    #[test]
    fn ic0_rejects_indefinite() {
        let mut b = CooBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(1, 1, 1.0);
        b.add(0, 1, -2.0);
        b.add(1, 0, -2.0);
        let a = b.into_csr().unwrap();
        assert!(matches!(
            IncompleteCholesky::new(&a),
            Err(SolverError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn default_preconditioner_is_jacobi() {
        assert_eq!(Preconditioner::default(), Preconditioner::Jacobi);
    }

    #[test]
    fn multigrid_without_geometry_is_a_typed_error() {
        let a = grid_matrix(8);
        assert!(matches!(
            AppliedPreconditioner::build(Preconditioner::Multigrid, &a),
            Err(SolverError::MissingGridGeometry)
        ));
    }
}
