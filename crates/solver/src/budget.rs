//! Run budgets for long solves: wall-clock deadlines and cooperative
//! cancellation.
//!
//! A [`SolveBudget`] bounds how long an iterative solve may run. The CG
//! loop polls it — cancellation every iteration (one atomic load),
//! deadline every few iterations (a clock read) — and returns a typed
//! [`SolverError::Cancelled`](crate::SolverError::Cancelled) or
//! [`SolverError::DeadlineExceeded`](crate::SolverError::DeadlineExceeded)
//! carrying the partial iterate, so an interrupted campaign keeps every
//! converged digit it paid for.

use std::time::Instant;

use pi3d_telemetry::CancelToken;

/// Why a budgeted solve stopped before converging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interruption {
    /// The [`CancelToken`] fired (SIGINT or programmatic cancel).
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
}

/// Limits applied to a solve: an optional wall-clock deadline and an
/// optional cancellation token. The default budget is unlimited.
///
/// # Examples
///
/// ```
/// use pi3d_solver::SolveBudget;
/// use pi3d_telemetry::CancelToken;
///
/// let token = CancelToken::new();
/// let budget = SolveBudget::unlimited().with_cancel(token.clone());
/// assert!(budget.interruption().is_none());
/// token.cancel();
/// assert!(budget.interruption().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl SolveBudget {
    /// A budget with no deadline and no cancel token (never interrupts).
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token polled every iteration.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// True when neither a deadline nor a cancel token is configured —
    /// polls are skipped entirely on this path.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// True once the attached token (if any) has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// True once the deadline (if any) has passed. Reads the clock.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Full check: cancellation first (cheaper and more urgent), then the
    /// deadline.
    pub fn interruption(&self) -> Option<Interruption> {
        if self.cancelled() {
            Some(Interruption::Cancelled)
        } else if self.deadline_exceeded() {
            Some(Interruption::DeadlineExceeded)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.cancelled());
        assert!(!b.deadline_exceeded());
        assert_eq!(b.interruption(), None);
    }

    #[test]
    fn cancel_wins_over_deadline() {
        let token = CancelToken::new();
        let b = SolveBudget::unlimited()
            .with_cancel(token.clone())
            .with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(b.interruption(), Some(Interruption::DeadlineExceeded));
        token.cancel();
        assert_eq!(b.interruption(), Some(Interruption::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let b = SolveBudget::unlimited().with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(b.interruption(), None);
        assert!(!b.is_unlimited());
    }

    #[test]
    fn budget_equality_follows_token_identity() {
        let token = CancelToken::new();
        let a = SolveBudget::unlimited().with_cancel(token.clone());
        let b = SolveBudget::unlimited().with_cancel(token);
        assert_eq!(a, b);
        assert_ne!(a, SolveBudget::unlimited().with_cancel(CancelToken::new()));
    }
}
