//! Matrix-free application of stacked-grid PDN systems.
//!
//! A 3D-DRAM power mesh is a stack of regular `nx × ny` sheets: inside a
//! sheet every east-west edge carries the same conductance and every
//! north-south edge carries the same conductance, so the in-sheet part of
//! the nodal matrix is a 5-point stencil described by two scalars per
//! grid. Only the diagonal (which absorbs ground/pad ties and fault
//! drift) and the sparse inter-grid vertical links (TSVs, bumps, vias —
//! the entries faults actually perturb) need per-entry storage.
//!
//! [`StencilOperator::from_csr`] recovers that structure from an
//! assembled [`CsrMatrix`] by *verification*, not by trust: every
//! in-grid off-diagonal must be bit-for-bit equal to its grid's stencil
//! coefficient, and every geometric edge must actually be present,
//! otherwise extraction declines (`None`) and callers keep the CSR. The
//! apply then visits each row's terms in the same ascending-column order
//! as [`CsrMatrix::mul_vec_into`], with values copied or verified
//! bitwise from the CSR, so `y = A·x` is **bit-identical** to the CSR
//! product — swapping the operator can never change a result, only the
//! time and memory it takes to produce it.

use crate::csr::CsrMatrix;

/// Geometry of one regular grid inside the global node numbering:
/// `nx × ny` nodes at indices `base .. base + nx·ny`, row-major with
/// `ix` fastest (node `(ix, iy)` is `base + iy·nx + ix`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilGrid {
    /// Index of the grid's first node in the global numbering.
    pub base: usize,
    /// Node count along x.
    pub nx: usize,
    /// Node count along y.
    pub ny: usize,
}

impl StencilGrid {
    /// Number of nodes in this grid.
    pub fn node_count(&self) -> usize {
        self.nx * self.ny
    }
}

/// A linear operator `y = A·x` that the CG loop can apply without
/// knowing the storage scheme behind it.
///
/// Implemented by [`CsrMatrix`] (general sparse storage) and
/// [`StencilOperator`] (matrix-free stacked-grid form). Both
/// implementations promise the same bits for the same input: the
/// threaded apply partitions rows into contiguous chunks and keeps each
/// row's ascending-column summation order, so results are independent
/// of thread count and of which implementation ran.
pub trait Operator: std::fmt::Debug + Send + Sync {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A·x` sequentially.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have a length other than [`dim`](Self::dim).
    fn apply_into(&self, x: &[f64], y: &mut [f64]);

    /// As [`apply_into`](Self::apply_into), partitioning rows over up to
    /// `threads` scoped workers when `dim() >= min_parallel_dim` (below
    /// that, per-call spawn overhead exceeds the multiply itself).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have a length other than [`dim`](Self::dim).
    fn apply_into_threaded(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
        min_parallel_dim: usize,
    );

    /// Returns the operator's diagonal.
    fn diagonal(&self) -> Vec<f64>;
}

impl Operator for CsrMatrix {
    fn dim(&self) -> usize {
        self.dim()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec_into(x, y);
    }

    fn apply_into_threaded(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
        min_parallel_dim: usize,
    ) {
        self.mul_vec_into_threaded_with(x, y, threads, min_parallel_dim);
    }

    fn diagonal(&self) -> Vec<f64> {
        self.diagonal()
    }
}

/// Per-grid stencil coefficients as they appear in the matrix: the
/// off-diagonal *values* (negated conductances, so typically ≤ 0).
#[derive(Debug, Clone, Copy)]
struct GridStencil {
    base: usize,
    nx: usize,
    ny: usize,
    /// Value of every east/west off-diagonal entry in this grid.
    x_edge: f64,
    /// Value of every north/south off-diagonal entry in this grid.
    y_edge: f64,
}

impl GridStencil {
    fn end(&self) -> usize {
        self.base + self.nx * self.ny
    }
}

/// Matrix-free form of a stacked-grid PDN system: per-grid 5-point
/// stencil coefficients, a per-node diagonal, and a sparse list of
/// inter-grid entries ("extras": TSVs, bumps, bond vias — whatever the
/// stamping put between grids).
///
/// Built by [`StencilOperator::from_csr`]; applying it reproduces the
/// source CSR product bit-for-bit (see the module docs). Compared to the
/// CSR it replaces, it stores ~1 value per node instead of ~7 values +
/// ~7 column indices, and the in-grid terms index `x` arithmetically
/// instead of through `col_idx`, which is where the speed comes from.
pub struct StencilOperator {
    dim: usize,
    grids: Vec<GridStencil>,
    diag: Vec<f64>,
    extras_row_ptr: Vec<usize>,
    extras_col: Vec<u32>,
    extras_val: Vec<f64>,
}

impl std::fmt::Debug for StencilOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StencilOperator")
            .field("dim", &self.dim)
            .field("grids", &self.grids.len())
            .field("extras_nnz", &self.extras_col.len())
            .finish()
    }
}

impl StencilOperator {
    /// Attempts to recover the stencil structure of `a` given the grid
    /// geometry, verifying every assumption bitwise along the way.
    ///
    /// Returns `None` — callers fall back to the CSR — when the matrix
    /// does not match the claimed geometry exactly: grids that do not
    /// tile `[0, dim)` contiguously, a missing diagonal or geometric
    /// edge, an in-grid off-diagonal that is not bit-equal to the grid's
    /// uniform coefficient, or an in-grid entry off the 5-point pattern.
    pub fn from_csr(a: &CsrMatrix, grids: &[StencilGrid]) -> Option<StencilOperator> {
        let dim = a.dim();
        if grids.is_empty() {
            return None;
        }
        let mut next = 0usize;
        for g in grids {
            if g.nx == 0 || g.ny == 0 || g.base != next {
                return None;
            }
            next = g.base + g.nx * g.ny;
        }
        if next != dim {
            return None;
        }

        let mut out_grids = Vec::with_capacity(grids.len());
        let mut diag = vec![0.0f64; dim];
        let mut extras_row_ptr = Vec::with_capacity(dim + 1);
        extras_row_ptr.push(0usize);
        let mut extras_col: Vec<u32> = Vec::new();
        let mut extras_val: Vec<f64> = Vec::new();

        for g in grids {
            let (base, nx, ny) = (g.base, g.nx, g.ny);
            let end = base + nx * ny;
            // Uniform edge values, fixed by the first edge seen and
            // verified bitwise against every other edge of the same
            // orientation in this grid.
            let mut x_edge: Option<u64> = None;
            let mut y_edge: Option<u64> = None;
            for r in base..end {
                let off = r - base;
                let (ix, iy) = (off % nx, off / nx);
                // Which stencil terms this row must contain.
                let mut saw_diag = false;
                let mut need = 0u8; // bit 0: W, 1: E, 2: S, 3: N
                for (c, v) in a.row(r) {
                    if c == r {
                        diag[r] = v;
                        saw_diag = true;
                    } else if c < base || c >= end {
                        extras_col.push(c as u32);
                        extras_val.push(v);
                    } else {
                        let (edge, bit) = if c + 1 == r && ix > 0 {
                            (&mut x_edge, 0)
                        } else if c == r + 1 && ix + 1 < nx {
                            (&mut x_edge, 1)
                        } else if c + nx == r && iy > 0 {
                            (&mut y_edge, 2)
                        } else if c == r + nx && iy + 1 < ny {
                            (&mut y_edge, 3)
                        } else {
                            // In-grid coupling off the 5-point pattern.
                            return None;
                        };
                        match *edge {
                            Some(bits) if bits != v.to_bits() => return None,
                            Some(_) => {}
                            None => *edge = Some(v.to_bits()),
                        }
                        need |= 1 << bit;
                    }
                }
                // Every geometric edge must be present: a dropped
                // (exactly cancelled) entry would make the stencil
                // apply a term the CSR no longer has.
                let mut expect = 0u8;
                if ix > 0 {
                    expect |= 1;
                }
                if ix + 1 < nx {
                    expect |= 2;
                }
                if iy > 0 {
                    expect |= 4;
                }
                if iy + 1 < ny {
                    expect |= 8;
                }
                if !saw_diag || need != expect {
                    return None;
                }
                extras_row_ptr.push(extras_col.len());
            }
            out_grids.push(GridStencil {
                base,
                nx,
                ny,
                x_edge: f64::from_bits(x_edge.unwrap_or(0)),
                y_edge: f64::from_bits(y_edge.unwrap_or(0)),
            });
        }

        Some(StencilOperator {
            dim,
            grids: out_grids,
            diag,
            extras_row_ptr,
            extras_col,
            extras_val,
        })
    }

    /// Dimension of the operator.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of regular grids.
    pub fn grid_count(&self) -> usize {
        self.grids.len()
    }

    /// Number of stored inter-grid (irregular) entries.
    pub fn extras_nnz(&self) -> usize {
        self.extras_col.len()
    }

    /// The grid geometry this operator was extracted against.
    pub fn grids(&self) -> Vec<StencilGrid> {
        self.grids
            .iter()
            .map(|g| StencilGrid {
                base: g.base,
                nx: g.nx,
                ny: g.ny,
            })
            .collect()
    }

    /// Applies the row range `[start, start + y.len())` (shared kernel
    /// of the sequential and chunked-parallel paths).
    ///
    /// Per row, the in-grid stencil columns (`r−nx, r−1, r, r+1, r+nx`,
    /// already ascending) all lie inside `[base, end)` while extras lie
    /// strictly outside it, so the CSR row's ascending-column order is
    /// always "extras below the grid, stencil terms, extras above the
    /// grid" — reproduced here without any per-term merge.
    fn apply_rows_into(&self, x: &[f64], y: &mut [f64], start: usize) {
        let end_all = start + y.len();
        let mut gi = self.grids.partition_point(|g| g.end() <= start);
        let mut r = start;
        while r < end_all {
            let g = &self.grids[gi];
            let stop = end_all.min(g.end());
            // Grid-local coordinates advance incrementally — no per-row
            // division — and the extras cursor threads through the whole
            // chunk (each row drains its extras completely, so `e` lands
            // on the next row's first extra).
            let off = r - g.base;
            let mut ix = off % g.nx;
            let mut iy = off / g.nx;
            let mut e = self.extras_row_ptr[r];
            while r < stop {
                let hi = self.extras_row_ptr[r + 1];
                let mut acc = 0.0;
                while e < hi && (self.extras_col[e] as usize) < g.base {
                    acc += self.extras_val[e] * x[self.extras_col[e] as usize];
                    e += 1;
                }
                if iy > 0 {
                    acc += g.y_edge * x[r - g.nx];
                }
                if ix > 0 {
                    acc += g.x_edge * x[r - 1];
                }
                acc += self.diag[r] * x[r];
                if ix + 1 < g.nx {
                    acc += g.x_edge * x[r + 1];
                }
                if iy + 1 < g.ny {
                    acc += g.y_edge * x[r + g.nx];
                }
                while e < hi {
                    acc += self.extras_val[e] * x[self.extras_col[e] as usize];
                    e += 1;
                }
                y[r - start] = acc;
                r += 1;
                ix += 1;
                if ix == g.nx {
                    ix = 0;
                    iy += 1;
                }
            }
            if r == g.end() {
                gi += 1;
            }
        }
    }
}

impl Operator for StencilOperator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim);
        assert_eq!(y.len(), self.dim);
        #[cfg(feature = "telemetry")]
        {
            static SPMV: std::sync::OnceLock<&'static pi3d_telemetry::Counter> =
                std::sync::OnceLock::new();
            SPMV.get_or_init(|| pi3d_telemetry::metrics::counter("solver.stencil.spmv"))
                .incr(1);
        }
        self.apply_rows_into(x, y, 0);
    }

    fn apply_into_threaded(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
        min_parallel_dim: usize,
    ) {
        let threads = threads.max(1).min(self.dim.max(1));
        if threads == 1 || self.dim < min_parallel_dim {
            self.apply_into(x, y);
            return;
        }
        assert_eq!(x.len(), self.dim);
        assert_eq!(y.len(), self.dim);
        #[cfg(feature = "telemetry")]
        {
            static SPMV_PAR: std::sync::OnceLock<&'static pi3d_telemetry::Counter> =
                std::sync::OnceLock::new();
            SPMV_PAR
                .get_or_init(|| pi3d_telemetry::metrics::counter("solver.stencil.spmv_parallel"))
                .incr(1);
        }
        let rows_per_chunk = self.dim.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, y_chunk) in y.chunks_mut(rows_per_chunk).enumerate() {
                let start = chunk_idx * rows_per_chunk;
                scope.spawn(move || self.apply_rows_into(x, y_chunk, start));
            }
        });
    }

    fn diagonal(&self) -> Vec<f64> {
        self.diag.clone()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use pi3d_telemetry::rng::SplitMix64;

    /// Builds a small two-grid stack: an `nx × ny` sheet over an
    /// `nx2 × ny2` sheet, vertical links between a few node pairs, and
    /// ground ties on the bottom sheet.
    fn stack_system(nx: usize, ny: usize, nx2: usize, ny2: usize, seed: u64) -> CsrStack {
        let mut rng = SplitMix64::new(seed);
        let mut coo = CooBuilder::new(nx * ny + nx2 * ny2);
        let grids = vec![
            StencilGrid { base: 0, nx, ny },
            StencilGrid {
                base: nx * ny,
                nx: nx2,
                ny: ny2,
            },
        ];
        let gx = [0.8, 1.7];
        let gy = [1.3, 0.9];
        for (gi, g) in grids.iter().enumerate() {
            for iy in 0..g.ny {
                for ix in 0..g.nx {
                    let n = g.base + iy * g.nx + ix;
                    if ix + 1 < g.nx {
                        coo.stamp_conductance(n, n + 1, gx[gi]);
                    }
                    if iy + 1 < g.ny {
                        coo.stamp_conductance(n, n + g.nx, gy[gi]);
                    }
                }
            }
        }
        // Sparse vertical links with per-link random conductance.
        for _ in 0..(nx * ny / 3).max(1) {
            let a = rng.next_below((nx * ny) as u64) as usize;
            let b = nx * ny + rng.next_below((nx2 * ny2) as u64) as usize;
            coo.stamp_conductance(a, b, 0.05 + rng.next_below(100) as f64 / 50.0);
        }
        // Ground ties so the system is SPD.
        for i in 0..nx2 * ny2 {
            if i % 5 == 0 {
                coo.stamp_to_ground(nx * ny + i, 2.0);
            }
        }
        coo.stamp_to_ground(0, 1.0);
        CsrStack {
            matrix: coo.into_csr().unwrap(),
            grids,
        }
    }

    struct CsrStack {
        matrix: CsrMatrix,
        grids: Vec<StencilGrid>,
    }

    fn random_x(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| rng.next_below(2_000_000) as f64 / 1e6 - 1.0)
            .collect()
    }

    #[test]
    fn extraction_succeeds_on_regular_stack() {
        let s = stack_system(7, 5, 4, 6, 1);
        let op = StencilOperator::from_csr(&s.matrix, &s.grids).expect("regular stack extracts");
        assert_eq!(op.dim(), s.matrix.dim());
        assert_eq!(op.grid_count(), 2);
        assert!(op.extras_nnz() > 0);
    }

    #[test]
    fn apply_is_bit_identical_to_csr() {
        for seed in 0..8 {
            let s = stack_system(6 + seed as usize % 3, 5, 4, 7, seed);
            let op = StencilOperator::from_csr(&s.matrix, &s.grids).unwrap();
            let x = random_x(s.matrix.dim(), seed.wrapping_mul(0x9e37));
            let mut y_csr = vec![0.0; s.matrix.dim()];
            let mut y_st = vec![0.0; s.matrix.dim()];
            s.matrix.mul_vec_into(&x, &mut y_csr);
            op.apply_into(&x, &mut y_st);
            for i in 0..x.len() {
                assert_eq!(
                    y_csr[i].to_bits(),
                    y_st[i].to_bits(),
                    "row {i} differs (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn threaded_apply_is_bit_identical_for_every_thread_count() {
        let s = stack_system(9, 8, 6, 7, 42);
        let op = StencilOperator::from_csr(&s.matrix, &s.grids).unwrap();
        let x = random_x(s.matrix.dim(), 7);
        let mut reference = vec![0.0; s.matrix.dim()];
        op.apply_into(&x, &mut reference);
        for threads in [1, 2, 3, 8] {
            let mut y = vec![0.0; s.matrix.dim()];
            // min_parallel_dim 1 forces the chunked path.
            op.apply_into_threaded(&x, &mut y, threads, 1);
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn irregular_matrices_decline_extraction() {
        // An in-grid diagonal coupling is off the 5-point pattern.
        let mut coo = CooBuilder::new(9);
        let grids = [StencilGrid {
            base: 0,
            nx: 3,
            ny: 3,
        }];
        for iy in 0..3usize {
            for ix in 0..3usize {
                let n = iy * 3 + ix;
                if ix < 2 {
                    coo.stamp_conductance(n, n + 1, 1.0);
                }
                if iy < 2 {
                    coo.stamp_conductance(n, n + 3, 1.0);
                }
                coo.stamp_to_ground(n, 0.5);
            }
        }
        coo.stamp_conductance(0, 4, 0.3); // diagonal in-grid link
        let m = coo.into_csr().unwrap();
        assert!(StencilOperator::from_csr(&m, &grids).is_none());

        // Non-uniform edge conductance.
        let mut coo = CooBuilder::new(4);
        let grids = [StencilGrid {
            base: 0,
            nx: 2,
            ny: 2,
        }];
        coo.stamp_conductance(0, 1, 1.0);
        coo.stamp_conductance(2, 3, 1.5); // differs from row 0's x-edge
        coo.stamp_conductance(0, 2, 1.0);
        coo.stamp_conductance(1, 3, 1.0);
        for n in 0..4 {
            coo.stamp_to_ground(n, 0.5);
        }
        let m = coo.into_csr().unwrap();
        assert!(StencilOperator::from_csr(&m, &grids).is_none());

        // Geometry that does not tile the dimension.
        let s = stack_system(4, 4, 3, 3, 3);
        let bad = [StencilGrid {
            base: 0,
            nx: 4,
            ny: 4,
        }];
        assert!(StencilOperator::from_csr(&s.matrix, &bad).is_none());
    }

    #[test]
    fn csr_operator_impl_matches_direct_calls() {
        let s = stack_system(5, 5, 4, 4, 9);
        let x = random_x(s.matrix.dim(), 11);
        let mut y1 = vec![0.0; s.matrix.dim()];
        let mut y2 = vec![0.0; s.matrix.dim()];
        s.matrix.mul_vec_into(&x, &mut y1);
        let op: &dyn Operator = &s.matrix;
        op.apply_into(&x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(op.diagonal(), s.matrix.diagonal());
        assert_eq!(op.dim(), s.matrix.dim());
    }
}
