//! Factor-once / solve-many: [`PreparedSystem`] bundles a CSR matrix with
//! its already-built preconditioner so that sweep workloads (IR-drop LUTs,
//! design-space characterization) pay the factorization cost once and then
//! fan independent right-hand sides across a scoped worker pool.

use crate::parallel::parallel_map;
use crate::precond::AppliedPreconditioner;
use crate::{CgSolution, CgSolver, CsrMatrix, Preconditioner, SolverError};
use std::sync::atomic::{AtomicU64, Ordering};

/// An immutable, `Sync` solve handle: a CSR matrix, its preconditioner
/// (built exactly once, at construction), and the CG configuration.
///
/// The production workloads of this workspace — the Section 5.2 IR-drop
/// lookup table and the Section 6.1 design-space sweep — are hundreds of
/// solves of the *same* conductance matrix under different load vectors.
/// [`CgSolver::solve_with_guess`] rebuilds the preconditioner (including
/// the IC(0) factorization) on every call; a `PreparedSystem` hoists that
/// work to construction so each subsequent [`solve`](Self::solve) runs the
/// bare CG iteration, and [`solve_batch`](Self::solve_batch) runs many
/// right-hand sides concurrently with deterministic, input-ordered results.
///
/// # Determinism
///
/// Batch solves take no warm start and share one immutable matrix and
/// preconditioner, so every solve is independent of batch order and thread
/// count: `solve_batch` returns bit-identical solutions for any `threads`,
/// and each equals the corresponding sequential
/// [`solve`](Self::solve)`(rhs, None)`.
///
/// # Examples
///
/// ```
/// use pi3d_solver::{CooBuilder, PreparedSystem, Preconditioner};
///
/// # fn main() -> Result<(), pi3d_solver::SolverError> {
/// let mut b = CooBuilder::new(3);
/// for i in 0..3 {
///     b.stamp_to_ground(i, 1.0);
/// }
/// b.stamp_conductance(0, 1, 1.0);
/// b.stamp_conductance(1, 2, 1.0);
/// let system = PreparedSystem::new(b.into_csr()?, Preconditioner::IncompleteCholesky)?;
/// let batch = vec![vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]];
/// let solutions = system.solve_batch(&batch)?;
/// assert_eq!(solutions.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PreparedSystem {
    matrix: CsrMatrix,
    kind: Preconditioner,
    applied: AppliedPreconditioner,
    solver: CgSolver,
    threads: usize,
    solves: AtomicU64,
}

impl PreparedSystem {
    /// Builds the preconditioner for `matrix` once and wraps both with the
    /// default [`CgSolver`] configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotPositiveDefinite`] if the preconditioner
    /// construction breaks down.
    pub fn new(matrix: CsrMatrix, preconditioner: Preconditioner) -> Result<Self, SolverError> {
        Self::with_solver(matrix, preconditioner, CgSolver::new())
    }

    /// As [`new`](Self::new), with an explicit solver configuration.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_solver(
        matrix: CsrMatrix,
        preconditioner: Preconditioner,
        solver: CgSolver,
    ) -> Result<Self, SolverError> {
        let applied = {
            #[cfg(feature = "telemetry")]
            let _span = pi3d_telemetry::span::span("precond_setup");
            AppliedPreconditioner::build(preconditioner, &matrix)?
        };
        #[cfg(feature = "telemetry")]
        pi3d_telemetry::metrics::counter("solver.prepared.builds").incr(1);
        Ok(PreparedSystem {
            matrix,
            kind: preconditioner,
            applied,
            solver,
            threads: 1,
            solves: AtomicU64::new(0),
        })
    }

    /// Sets the worker-thread budget used by [`solve_batch`](Self::solve_batch)
    /// and by the chunked-parallel SpMV inside single solves. `0` is
    /// treated as `1`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The preconditioner kind built at construction.
    pub fn preconditioner(&self) -> Preconditioner {
        self.kind
    }

    /// The solver configuration.
    pub fn solver(&self) -> &CgSolver {
        &self.solver
    }

    /// Configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of solves performed through this handle so far.
    pub fn solve_count(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    /// Solves `A·x = rhs` reusing the preconditioner built at
    /// construction.
    ///
    /// # Errors
    ///
    /// As for [`CgSolver::solve_with_guess`].
    pub fn solve(&self, rhs: &[f64], guess: Option<&[f64]>) -> Result<CgSolution, SolverError> {
        self.record_solve(1);
        self.solver
            .solve_prepared(&self.matrix, rhs, guess, &self.applied, self.threads)
    }

    /// Solves one independent right-hand side per entry of `rhs_batch`,
    /// fanning the solves across up to [`threads`](Self::threads) scoped
    /// worker threads. Results are returned in input order; no warm starts
    /// are used, so the output is bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns the first (by input index) solve error, if any.
    pub fn solve_batch(&self, rhs_batch: &[Vec<f64>]) -> Result<Vec<CgSolution>, SolverError> {
        #[cfg(feature = "telemetry")]
        {
            let _span = pi3d_telemetry::span::span("solve_batch");
            pi3d_telemetry::metrics::counter("solver.prepared.batches").incr(1);
            pi3d_telemetry::metrics::histogram("solver.prepared.batch_size")
                .record(rhs_batch.len() as u64);
        }
        self.record_solve(rhs_batch.len() as u64);
        // SpMV-level threading is disabled inside batch members: the pool is
        // already saturated at the RHS level, and nested scoped pools would
        // oversubscribe.
        let results = parallel_map(rhs_batch, self.threads, |_, rhs| {
            self.solver
                .solve_prepared(&self.matrix, rhs, None, &self.applied, 1)
        });
        results.into_iter().collect()
    }

    /// Releases the handle, returning the wrapped matrix.
    pub fn into_matrix(self) -> CsrMatrix {
        self.matrix
    }

    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    fn record_solve(&self, count: u64) {
        let before = self.solves.fetch_add(count, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        {
            use pi3d_telemetry::metrics;
            metrics::counter("solver.prepared.solves").incr(count);
            // Every solve after the first on this handle would have paid a
            // preconditioner build under the per-call API.
            let avoided = if before == 0 {
                count.saturating_sub(1)
            } else {
                count
            };
            if avoided > 0 {
                metrics::counter("solver.prepared.factorizations_avoided").incr(avoided);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = before;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    fn grid_2d(nx: usize, ny: usize, ground_g: f64) -> CsrMatrix {
        let idx = |x: usize, y: usize| y * nx + x;
        let mut b = CooBuilder::new(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                b.stamp_to_ground(idx(x, y), ground_g);
                if x + 1 < nx {
                    b.stamp_conductance(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    b.stamp_conductance(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        b.into_csr().unwrap()
    }

    fn loads(n: usize, seed: u64) -> Vec<f64> {
        // Cheap deterministic pseudo-random loads.
        let mut v = Vec::with_capacity(n);
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..n {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(1e-3 * ((s >> 33) as f64 / (1u64 << 31) as f64));
        }
        v
    }

    #[test]
    fn prepared_solve_matches_per_call_solver_bitwise() {
        let a = grid_2d(12, 12, 0.05);
        let b = loads(144, 7);
        for pc in [
            Preconditioner::Identity,
            Preconditioner::Jacobi,
            Preconditioner::IncompleteCholesky,
        ] {
            let per_call = CgSolver::new().solve(&a, &b, pc).unwrap();
            let prepared = PreparedSystem::new(a.clone(), pc).unwrap();
            let reused = prepared.solve(&b, None).unwrap();
            assert_eq!(per_call.x, reused.x, "{pc:?}");
            assert_eq!(per_call.iterations, reused.iterations, "{pc:?}");
        }
    }

    #[test]
    fn solve_batch_is_deterministic_across_thread_counts() {
        let a = grid_2d(10, 10, 0.02);
        let batch: Vec<Vec<f64>> = (0..9).map(|i| loads(100, i)).collect();
        let system = PreparedSystem::new(a, Preconditioner::IncompleteCholesky).unwrap();

        let sequential: Vec<Vec<f64>> = batch
            .iter()
            .map(|rhs| system.solve(rhs, None).unwrap().x)
            .collect();
        for threads in [1, 4] {
            let system =
                PreparedSystem::new(system.matrix().clone(), Preconditioner::IncompleteCholesky)
                    .unwrap()
                    .with_threads(threads);
            let solutions = system.solve_batch(&batch).unwrap();
            for (i, sol) in solutions.iter().enumerate() {
                assert_eq!(sol.x, sequential[i], "threads {threads}, rhs {i}");
            }
        }
    }

    #[test]
    fn solve_batch_reports_first_error_by_index() {
        let a = grid_2d(4, 4, 0.1);
        let system = PreparedSystem::new(a, Preconditioner::Jacobi).unwrap();
        let batch = vec![vec![1.0; 16], vec![1.0; 3], vec![2.0; 16]];
        let err = system.solve_batch(&batch).unwrap_err();
        assert!(matches!(
            err,
            SolverError::DimensionMismatch {
                expected: 16,
                found: 3
            }
        ));
    }

    #[test]
    fn solve_count_tracks_all_paths() {
        let a = grid_2d(4, 4, 0.1);
        let system = PreparedSystem::new(a, Preconditioner::Jacobi).unwrap();
        assert_eq!(system.solve_count(), 0);
        let _ = system.solve(&[1.0; 16], None).unwrap();
        let _ = system.solve_batch(&[vec![1.0; 16], vec![0.5; 16]]).unwrap();
        assert_eq!(system.solve_count(), 3);
    }

    #[test]
    fn builder_accessors() {
        let a = grid_2d(4, 4, 0.1);
        let system = PreparedSystem::with_solver(
            a,
            Preconditioner::IncompleteCholesky,
            CgSolver::new().with_tolerance(1e-8),
        )
        .unwrap()
        .with_threads(0);
        assert_eq!(system.threads(), 1);
        assert_eq!(system.preconditioner(), Preconditioner::IncompleteCholesky);
        assert_eq!(system.solver().tolerance(), 1e-8);
        assert_eq!(system.matrix().dim(), 16);
        let m = system.into_matrix();
        assert_eq!(m.dim(), 16);
    }
}
