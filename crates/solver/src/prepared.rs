//! Factor-once / solve-many: [`PreparedSystem`] bundles a CSR matrix with
//! its already-built preconditioner so that sweep workloads (IR-drop LUTs,
//! design-space characterization) pay the factorization cost once and then
//! fan independent right-hand sides across a scoped worker pool.

use crate::parallel::parallel_map;
use crate::precond::AppliedPreconditioner;
use crate::stencil::{Operator, StencilGrid, StencilOperator};
use crate::{vecops, CgSolution, CgSolver, CsrMatrix, DenseMatrix, Preconditioner, SolverError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// An immutable, `Sync` solve handle: a CSR matrix, its preconditioner
/// (built exactly once, at construction), and the CG configuration.
///
/// The production workloads of this workspace — the Section 5.2 IR-drop
/// lookup table and the Section 6.1 design-space sweep — are hundreds of
/// solves of the *same* conductance matrix under different load vectors.
/// [`CgSolver::solve_with_guess`] rebuilds the preconditioner (including
/// the IC(0) factorization) on every call; a `PreparedSystem` hoists that
/// work to construction so each subsequent [`solve`](Self::solve) runs the
/// bare CG iteration, and [`solve_batch`](Self::solve_batch) runs many
/// right-hand sides concurrently with deterministic, input-ordered results.
///
/// # Determinism
///
/// Batch solves take no warm start and share one immutable matrix and
/// preconditioner, so every solve is independent of batch order and thread
/// count: `solve_batch` returns bit-identical solutions for any `threads`,
/// and each equals the corresponding sequential
/// [`solve`](Self::solve)`(rhs, None)`.
///
/// # Examples
///
/// ```
/// use pi3d_solver::{CooBuilder, PreparedSystem, Preconditioner};
///
/// # fn main() -> Result<(), pi3d_solver::SolverError> {
/// let mut b = CooBuilder::new(3);
/// for i in 0..3 {
///     b.stamp_to_ground(i, 1.0);
/// }
/// b.stamp_conductance(0, 1, 1.0);
/// b.stamp_conductance(1, 2, 1.0);
/// let system = PreparedSystem::new(b.into_csr()?, Preconditioner::IncompleteCholesky)?;
/// let batch = vec![vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]];
/// let solutions = system.solve_batch(&batch)?;
/// assert_eq!(solutions.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PreparedSystem {
    matrix: CsrMatrix,
    stencil: Option<Arc<StencilOperator>>,
    kind: Preconditioner,
    applied: AppliedPreconditioner,
    solver: CgSolver,
    threads: usize,
    dense_fallback_limit: usize,
    spmv_min_dim: usize,
    solves: AtomicU64,
}

impl PreparedSystem {
    /// Builds the preconditioner for `matrix` once and wraps both with the
    /// default [`CgSolver`] configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotPositiveDefinite`] if the preconditioner
    /// construction breaks down, and [`SolverError::MissingGridGeometry`]
    /// for [`Preconditioner::Multigrid`], which needs the grid geometry
    /// only [`with_geometry`](Self::with_geometry) supplies.
    pub fn new(matrix: CsrMatrix, preconditioner: Preconditioner) -> Result<Self, SolverError> {
        Self::with_solver(matrix, preconditioner, CgSolver::new())
    }

    /// As [`new`](Self::new), with an explicit solver configuration.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn with_solver(
        matrix: CsrMatrix,
        preconditioner: Preconditioner,
        solver: CgSolver,
    ) -> Result<Self, SolverError> {
        Self::build(matrix, preconditioner, solver, &[])
    }

    /// As [`with_solver`](Self::with_solver), additionally describing the
    /// regular-grid geometry behind `matrix` (the stack's sheets, in node
    /// order). The geometry unlocks two things:
    ///
    /// * **Matrix-free applies** — when the matrix's in-grid structure
    ///   verifies bitwise against the claimed grids (see
    ///   [`StencilOperator::from_csr`]), solves run through the compact
    ///   stencil form. Results are bit-identical either way; irregular
    ///   matrices silently keep the CSR.
    /// * **[`Preconditioner::Multigrid`]** — the geometric hierarchy is
    ///   built from the same grids.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new); multigrid additionally reports
    /// [`SolverError::MissingGridGeometry`] when the grids do not tile
    /// the matrix dimension.
    pub fn with_geometry(
        matrix: CsrMatrix,
        preconditioner: Preconditioner,
        solver: CgSolver,
        grids: &[StencilGrid],
    ) -> Result<Self, SolverError> {
        Self::build(matrix, preconditioner, solver, grids)
    }

    fn build(
        matrix: CsrMatrix,
        preconditioner: Preconditioner,
        solver: CgSolver,
        grids: &[StencilGrid],
    ) -> Result<Self, SolverError> {
        let stencil = if grids.is_empty() {
            None
        } else {
            StencilOperator::from_csr(&matrix, grids).map(Arc::new)
        };
        #[cfg(feature = "telemetry")]
        if let Some(s) = &stencil {
            pi3d_telemetry::metrics::counter("solver.stencil.extracted").incr(1);
            pi3d_telemetry::debug!(
                "stencil operator extracted: {} grids, {} irregular entries",
                s.grid_count(),
                s.extras_nnz()
            );
        }
        let applied = {
            #[cfg(feature = "telemetry")]
            let _span = pi3d_telemetry::span::span("precond_setup");
            AppliedPreconditioner::build_with_geometry(
                preconditioner,
                &matrix,
                grids,
                stencil.as_ref(),
            )?
        };
        #[cfg(feature = "telemetry")]
        pi3d_telemetry::metrics::counter("solver.prepared.builds").incr(1);
        Ok(PreparedSystem {
            matrix,
            stencil,
            kind: preconditioner,
            applied,
            solver,
            threads: 1,
            dense_fallback_limit: 0,
            spmv_min_dim: calibrated_spmv_min_dim(),
            solves: AtomicU64::new(0),
        })
    }

    /// Sets the worker-thread budget used by [`solve_batch`](Self::solve_batch)
    /// and by the chunked-parallel SpMV inside single solves. `0` is
    /// treated as `1`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables a direct dense-Cholesky fallback for systems of at most
    /// `limit` unknowns: when CG fails to converge, the solve retries
    /// through [`DenseMatrix::cholesky`] instead of surfacing
    /// [`SolverError::NonConverged`]. `0` (the default) disables the
    /// fallback. The dense factorization is `O(n³)`, so the limit should
    /// stay in the low thousands; larger systems keep the structured
    /// error (which still carries the partial iterate).
    #[must_use]
    pub fn with_dense_fallback(mut self, limit: usize) -> Self {
        self.dense_fallback_limit = limit;
        self
    }

    /// Configured dense-fallback size limit (`0` = disabled).
    pub fn dense_fallback_limit(&self) -> usize {
        self.dense_fallback_limit
    }

    /// Overrides the sequential→parallel SpMV cutover: single solves use
    /// the chunked-parallel apply only when the system has at least this
    /// many rows. The default comes from [`calibrated_spmv_min_dim`], a
    /// per-process measurement of thread fan-out cost against per-row
    /// multiply cost. The cutover affects wall-clock time only — both
    /// paths are bit-identical.
    #[must_use]
    pub fn with_spmv_min_dim(mut self, min_dim: usize) -> Self {
        self.spmv_min_dim = min_dim.max(1);
        self
    }

    /// The sequential→parallel SpMV cutover in effect.
    pub fn spmv_min_dim(&self) -> usize {
        self.spmv_min_dim
    }

    /// Attaches a [`SolveBudget`](crate::SolveBudget) to the wrapped
    /// solver: every subsequent [`solve`](Self::solve) /
    /// [`solve_batch`](Self::solve_batch) member polls the budget's cancel
    /// token each iteration and its deadline periodically. A member
    /// interrupted mid-batch fails fast and its unfinished siblings drain
    /// in O(1) each (the entry check), so a SIGINT ends a batch within one
    /// CG iteration per in-flight worker.
    #[must_use]
    pub fn with_budget(mut self, budget: crate::SolveBudget) -> Self {
        self.solver = self.solver.clone().with_budget(budget);
        self
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The matrix-free stencil operator, when
    /// [`with_geometry`](Self::with_geometry) extracted one.
    pub fn stencil(&self) -> Option<&StencilOperator> {
        self.stencil.as_deref()
    }

    /// The operator solves apply the system through: the extracted
    /// stencil when available, otherwise the CSR matrix.
    pub fn operator(&self) -> &dyn Operator {
        match &self.stencil {
            Some(s) => s.as_ref(),
            None => &self.matrix,
        }
    }

    /// The preconditioner kind built at construction.
    pub fn preconditioner(&self) -> Preconditioner {
        self.kind
    }

    /// The solver configuration.
    pub fn solver(&self) -> &CgSolver {
        &self.solver
    }

    /// Configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of solves performed through this handle so far.
    pub fn solve_count(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    /// Solves `A·x = rhs` reusing the preconditioner built at
    /// construction.
    ///
    /// # Errors
    ///
    /// As for [`CgSolver::solve_with_guess`].
    pub fn solve(&self, rhs: &[f64], guess: Option<&[f64]>) -> Result<CgSolution, SolverError> {
        self.record_solve(1);
        self.solve_one(rhs, guess, self.threads)
    }

    /// One CG solve with the optional dense fallback on non-convergence.
    fn solve_one(
        &self,
        rhs: &[f64],
        guess: Option<&[f64]>,
        threads: usize,
    ) -> Result<CgSolution, SolverError> {
        match self.solver.solve_prepared(
            self.operator(),
            rhs,
            guess,
            &self.applied,
            threads,
            self.spmv_min_dim,
        ) {
            Err(SolverError::NonConverged { partial, .. })
                if self.matrix.dim() <= self.dense_fallback_limit =>
            {
                self.dense_rescue(rhs, *partial)
            }
            other => other,
        }
    }

    /// Direct-solve rescue path: factors the matrix densely and solves
    /// `rhs`, keeping the failed CG run's residual trace (with the final
    /// direct residual appended) so diagnostics survive the recovery.
    fn dense_rescue(&self, rhs: &[f64], partial: CgSolution) -> Result<CgSolution, SolverError> {
        #[cfg(feature = "telemetry")]
        let _span = pi3d_telemetry::span::span("dense_fallback");
        let x = DenseMatrix::from_csr(&self.matrix).cholesky()?.solve(rhs)?;
        let mut residual = vec![0.0; x.len()];
        self.matrix.mul_vec_into_threaded(&x, &mut residual, 1);
        for (r, b) in residual.iter_mut().zip(rhs) {
            *r = b - *r;
        }
        let norm_b = vecops::norm2(rhs);
        let relres = if norm_b > 0.0 {
            vecops::norm2(&residual) / norm_b
        } else {
            0.0
        };
        #[cfg(feature = "telemetry")]
        {
            pi3d_telemetry::metrics::counter("solver.recovered.dense_fallback").incr(1);
            pi3d_telemetry::debug!(
                "dense fallback rescued a non-converged CG solve: relres {relres:.3e}"
            );
        }
        let mut residual_trace = partial.residual_trace;
        residual_trace.push(relres);
        Ok(CgSolution {
            x,
            iterations: partial.iterations,
            relative_residual: relres,
            residual_trace,
        })
    }

    /// Solves one independent right-hand side per entry of `rhs_batch`,
    /// fanning the solves across up to [`threads`](Self::threads) scoped
    /// worker threads. Results are returned in input order; no warm starts
    /// are used, so the output is bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns the first (by input index) solve error, if any. Use
    /// [`solve_each`](Self::solve_each) when a failed member must not
    /// discard its siblings' solutions.
    pub fn solve_batch(&self, rhs_batch: &[Vec<f64>]) -> Result<Vec<CgSolution>, SolverError> {
        self.solve_each(rhs_batch).into_iter().collect()
    }

    /// As [`solve_batch`](Self::solve_batch), but returns one `Result` per
    /// right-hand side instead of collapsing to the first error: a
    /// non-converging or malformed member never poisons its siblings.
    /// Results are in input order and bit-identical for every thread count.
    pub fn solve_each(&self, rhs_batch: &[Vec<f64>]) -> Vec<Result<CgSolution, SolverError>> {
        #[cfg(feature = "telemetry")]
        {
            let _span = pi3d_telemetry::span::span("solve_batch");
            pi3d_telemetry::metrics::counter("solver.prepared.batches").incr(1);
            pi3d_telemetry::metrics::histogram("solver.prepared.batch_size")
                .record(rhs_batch.len() as u64);
        }
        self.record_solve(rhs_batch.len() as u64);
        // SpMV-level threading is disabled inside batch members: the pool is
        // already saturated at the RHS level, and nested scoped pools would
        // oversubscribe.
        parallel_map(rhs_batch, self.threads, |index, rhs| {
            // One trace slice per right-hand side, so the batch fan-out
            // renders as per-worker timelines in the flight recorder.
            #[cfg(feature = "telemetry")]
            let _rhs_slice = pi3d_telemetry::trace::span_with("solver", || format!("rhs[{index}]"));
            #[cfg(not(feature = "telemetry"))]
            let _ = index;
            self.solve_one(rhs, None, 1)
        })
    }

    /// Releases the handle, returning the wrapped matrix.
    pub fn into_matrix(self) -> CsrMatrix {
        self.matrix
    }

    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    fn record_solve(&self, count: u64) {
        let before = self.solves.fetch_add(count, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        {
            use pi3d_telemetry::metrics;
            metrics::counter("solver.prepared.solves").incr(count);
            // Every solve after the first on this handle would have paid a
            // preconditioner build under the per-call API.
            let avoided = if before == 0 {
                count.saturating_sub(1)
            } else {
                count
            };
            if avoided > 0 {
                metrics::counter("solver.prepared.factorizations_avoided").incr(avoided);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = before;
    }
}

/// Measured default for the sequential→parallel SpMV cutover used by
/// [`PreparedSystem`] (overridable per handle with
/// [`PreparedSystem::with_spmv_min_dim`]).
///
/// The chunked-parallel apply pays a scoped thread fan-out per call;
/// whether that pays off depends on how the host's spawn latency compares
/// to its per-row multiply throughput, which varies by an order of
/// magnitude across machines. This measures both once per process — a few
/// multiplies of a small 5-point grid and a few empty two-worker scopes —
/// and returns the break-even dimension with a 2× safety margin, clamped
/// to `[2_048, 1_048_576]`. Falls back to
/// [`PARALLEL_SPMV_MIN_DIM`](crate::PARALLEL_SPMV_MIN_DIM) if the probe
/// cannot run. The calibration (total ≈ a millisecond) affects only which
/// code path runs, never result bits, so solves stay deterministic.
pub fn calibrated_spmv_min_dim() -> usize {
    *SPMV_CALIBRATION.get_or_init(measure_spmv_min_dim)
}

/// Process-wide cutover calibration. Module-level (not function-local) so
/// [`prime_spmv_calibration`] can seed it from a persisted value before
/// the first solve would otherwise trigger the probe.
static SPMV_CALIBRATION: OnceLock<usize> = OnceLock::new();

/// Range the cutover is clamped to, probe or no probe: below 2048 rows the
/// fan-out can never pay for itself; above 2^20 the probe result is noise.
const SPMV_CALIBRATION_RANGE: (usize, usize) = (2_048, 1 << 20);

/// Schema tag of the persisted calibration file.
pub const SPMV_CALIBRATION_SCHEMA: &str = "pi3d.spmv_calibration.v1";

/// Seeds the process-wide SpMV cutover with a previously measured value
/// (clamped to the probe's own `[2048, 2^20]` range), skipping the startup
/// probe. First writer wins: if the probe (or an earlier prime) already
/// ran, the existing value stays. Returns the effective cutover either
/// way. Calibration affects only which code path runs, never result bits.
pub fn prime_spmv_calibration(min_dim: usize) -> usize {
    let (lo, hi) = SPMV_CALIBRATION_RANGE;
    let clamped = min_dim.clamp(lo, hi);
    *SPMV_CALIBRATION.get_or_init(|| clamped)
}

/// Runs the startup probe *now*, seeds the process-wide cutover with the
/// fresh measurement (first writer wins, so call before any solve), and
/// returns it — the `--recalibrate` path.
pub fn recalibrate_spmv() -> usize {
    let measured = measure_spmv_min_dim();
    prime_spmv_calibration(measured)
}

/// Loads a persisted cutover calibration written by
/// [`store_spmv_calibration`]. Returns `None` for a missing file, a
/// schema mismatch, or an out-of-range value — callers fall back to the
/// probe, so a stale or corrupt cache file costs a millisecond, never
/// correctness.
pub fn load_spmv_calibration(path: &std::path::Path) -> Option<usize> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = pi3d_telemetry::Json::parse(&text).ok()?;
    if doc.get("schema")?.as_str()? != SPMV_CALIBRATION_SCHEMA {
        return None;
    }
    let v = doc.get("spmv_min_dim")?.as_num()?;
    let (lo, hi) = SPMV_CALIBRATION_RANGE;
    if v.fract() != 0.0 || v < lo as f64 || v > hi as f64 {
        return None;
    }
    Some(v as usize)
}

/// Persists a measured cutover so later invocations (and daemon restarts)
/// can [`prime_spmv_calibration`] instead of re-probing. Creates the
/// parent directory and writes atomically (tmp + fsync + rename).
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn store_spmv_calibration(path: &std::path::Path, min_dim: usize) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let doc = pi3d_telemetry::Json::obj([
        ("schema", pi3d_telemetry::Json::str(SPMV_CALIBRATION_SCHEMA)),
        ("spmv_min_dim", pi3d_telemetry::Json::num(min_dim as f64)),
    ]);
    pi3d_telemetry::fsio::atomic_write(path, doc.to_compact_string().as_bytes())
}

fn measure_spmv_min_dim() -> usize {
    use std::time::Instant;
    // A 64×64 five-point grid: large enough to time, small enough to
    // build in microseconds.
    let n = 64usize;
    let mut b = crate::CooBuilder::with_capacity(n * n, n * n * 5);
    for iy in 0..n {
        for ix in 0..n {
            let node = iy * n + ix;
            if ix + 1 < n {
                b.stamp_conductance(node, node + 1, 1.0);
            }
            if iy + 1 < n {
                b.stamp_conductance(node, node + n, 1.0);
            }
            b.stamp_to_ground(node, 0.1);
        }
    }
    let Ok(a) = b.into_csr() else {
        return crate::PARALLEL_SPMV_MIN_DIM;
    };
    let x = vec![1.0; a.dim()];
    let mut y = vec![0.0; a.dim()];
    a.mul_vec_into(&x, &mut y); // warm caches
    let reps = 16u32;
    let started = Instant::now();
    for _ in 0..reps {
        a.mul_vec_into(&x, &mut y);
    }
    std::hint::black_box(&y);
    let row_ns = started.elapsed().as_nanos() as f64 / f64::from(reps) / a.dim() as f64;

    let scopes = 8u32;
    let started = Instant::now();
    for _ in 0..scopes {
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| std::hint::black_box(0u64));
            }
        });
    }
    let spawn_ns = started.elapsed().as_nanos() as f64 / f64::from(scopes);

    // At two workers the parallel path saves half the sequential multiply
    // and pays one fan-out: break even at dim = 2·spawn/row, doubled for
    // safety (fan-out latency is noisier than multiply throughput).
    let breakeven = 4.0 * spawn_ns / row_ns.max(0.01);
    (breakeven as usize).clamp(2_048, 1 << 20)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    fn grid_2d(nx: usize, ny: usize, ground_g: f64) -> CsrMatrix {
        let idx = |x: usize, y: usize| y * nx + x;
        let mut b = CooBuilder::new(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                b.stamp_to_ground(idx(x, y), ground_g);
                if x + 1 < nx {
                    b.stamp_conductance(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    b.stamp_conductance(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        b.into_csr().unwrap()
    }

    fn loads(n: usize, seed: u64) -> Vec<f64> {
        // Cheap deterministic pseudo-random loads.
        let mut v = Vec::with_capacity(n);
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..n {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(1e-3 * ((s >> 33) as f64 / (1u64 << 31) as f64));
        }
        v
    }

    #[test]
    fn prepared_solve_matches_per_call_solver_bitwise() {
        let a = grid_2d(12, 12, 0.05);
        let b = loads(144, 7);
        for pc in [
            Preconditioner::Identity,
            Preconditioner::Jacobi,
            Preconditioner::IncompleteCholesky,
        ] {
            let per_call = CgSolver::new().solve(&a, &b, pc).unwrap();
            let prepared = PreparedSystem::new(a.clone(), pc).unwrap();
            let reused = prepared.solve(&b, None).unwrap();
            assert_eq!(per_call.x, reused.x, "{pc:?}");
            assert_eq!(per_call.iterations, reused.iterations, "{pc:?}");
        }
    }

    #[test]
    fn solve_batch_is_deterministic_across_thread_counts() {
        let a = grid_2d(10, 10, 0.02);
        let batch: Vec<Vec<f64>> = (0..9).map(|i| loads(100, i)).collect();
        let system = PreparedSystem::new(a, Preconditioner::IncompleteCholesky).unwrap();

        let sequential: Vec<Vec<f64>> = batch
            .iter()
            .map(|rhs| system.solve(rhs, None).unwrap().x)
            .collect();
        for threads in [1, 4] {
            let system =
                PreparedSystem::new(system.matrix().clone(), Preconditioner::IncompleteCholesky)
                    .unwrap()
                    .with_threads(threads);
            let solutions = system.solve_batch(&batch).unwrap();
            for (i, sol) in solutions.iter().enumerate() {
                assert_eq!(sol.x, sequential[i], "threads {threads}, rhs {i}");
            }
        }
    }

    #[test]
    fn solve_batch_reports_first_error_by_index() {
        let a = grid_2d(4, 4, 0.1);
        let system = PreparedSystem::new(a, Preconditioner::Jacobi).unwrap();
        let batch = vec![vec![1.0; 16], vec![1.0; 3], vec![2.0; 16]];
        let err = system.solve_batch(&batch).unwrap_err();
        assert!(matches!(
            err,
            SolverError::DimensionMismatch {
                expected: 16,
                found: 3
            }
        ));
    }

    #[test]
    fn solve_count_tracks_all_paths() {
        let a = grid_2d(4, 4, 0.1);
        let system = PreparedSystem::new(a, Preconditioner::Jacobi).unwrap();
        assert_eq!(system.solve_count(), 0);
        let _ = system.solve(&[1.0; 16], None).unwrap();
        let _ = system.solve_batch(&[vec![1.0; 16], vec![0.5; 16]]).unwrap();
        assert_eq!(system.solve_count(), 3);
    }

    #[test]
    fn dense_fallback_rescues_iteration_starved_solve() {
        let a = grid_2d(8, 8, 0.05);
        let rhs = loads(64, 11);
        // Two iterations cannot converge a 64-node grid; without the
        // fallback the structured error surfaces.
        let starved = CgSolver::new().with_max_iterations(2).with_tolerance(1e-12);
        let system =
            PreparedSystem::with_solver(a.clone(), Preconditioner::Jacobi, starved.clone())
                .unwrap();
        assert!(matches!(
            system.solve(&rhs, None),
            Err(SolverError::NonConverged { .. })
        ));

        let system = PreparedSystem::with_solver(a.clone(), Preconditioner::Jacobi, starved)
            .unwrap()
            .with_dense_fallback(64);
        assert_eq!(system.dense_fallback_limit(), 64);
        let sol = system.solve(&rhs, None).unwrap();
        assert!(sol.relative_residual < 1e-10, "{}", sol.relative_residual);
        // The rescued solution matches a properly converged CG run.
        let reference = CgSolver::new()
            .with_tolerance(1e-12)
            .solve(&a, &rhs, Preconditioner::IncompleteCholesky)
            .unwrap();
        for (got, want) in sol.x.iter().zip(&reference.x) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        #[cfg(feature = "telemetry")]
        assert!(
            !sol.residual_trace.is_empty(),
            "CG trace must survive the rescue"
        );
    }

    #[test]
    fn dense_fallback_respects_size_limit() {
        let a = grid_2d(8, 8, 0.05);
        let rhs = loads(64, 11);
        let starved = CgSolver::new().with_max_iterations(2).with_tolerance(1e-12);
        // Limit below the system size: the structured error must survive.
        let system = PreparedSystem::with_solver(a, Preconditioner::Jacobi, starved)
            .unwrap()
            .with_dense_fallback(63);
        assert!(matches!(
            system.solve(&rhs, None),
            Err(SolverError::NonConverged { .. })
        ));
    }

    #[test]
    fn solve_each_isolates_failed_members() {
        let a = grid_2d(4, 4, 0.1);
        let system = PreparedSystem::new(a, Preconditioner::Jacobi)
            .unwrap()
            .with_threads(2);
        let batch = vec![vec![1.0; 16], vec![1.0; 3], vec![2.0; 16]];
        let results = system.solve_each(&batch);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SolverError::DimensionMismatch {
                expected: 16,
                found: 3
            })
        ));
        let ok = results[2].as_ref().unwrap();
        // Sibling solves are unaffected by the failure between them.
        let alone = system.solve(&batch[2], None).unwrap();
        assert_eq!(ok.x, alone.x);
    }

    #[test]
    fn cancelled_budget_drains_batch_with_typed_errors() {
        use pi3d_telemetry::CancelToken;
        let a = grid_2d(10, 10, 0.02);
        let batch: Vec<Vec<f64>> = (0..6).map(|i| loads(100, i)).collect();
        let token = CancelToken::new();
        token.cancel();
        let system = PreparedSystem::new(a, Preconditioner::Jacobi)
            .unwrap()
            .with_threads(2)
            .with_budget(crate::SolveBudget::unlimited().with_cancel(token));
        let results = system.solve_each(&batch);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(matches!(r, Err(SolverError::Cancelled { .. })), "got {r:?}");
        }
        // The cancelled error is not eligible for the dense fallback.
        assert!(matches!(
            system.solve(&batch[0], None),
            Err(SolverError::Cancelled { .. })
        ));
    }

    #[test]
    fn builder_accessors() {
        let a = grid_2d(4, 4, 0.1);
        let system = PreparedSystem::with_solver(
            a,
            Preconditioner::IncompleteCholesky,
            CgSolver::new().with_tolerance(1e-8),
        )
        .unwrap()
        .with_threads(0);
        assert_eq!(system.threads(), 1);
        assert_eq!(system.preconditioner(), Preconditioner::IncompleteCholesky);
        assert_eq!(system.solver().tolerance(), 1e-8);
        assert_eq!(system.matrix().dim(), 16);
        let m = system.into_matrix();
        assert_eq!(m.dim(), 16);
    }

    #[test]
    fn with_geometry_extracts_stencil_and_matches_csr_path_bitwise() {
        let a = grid_2d(12, 12, 0.05);
        let grids = [StencilGrid {
            base: 0,
            nx: 12,
            ny: 12,
        }];
        let b = loads(144, 11);
        for pc in [
            Preconditioner::Identity,
            Preconditioner::Jacobi,
            Preconditioner::IncompleteCholesky,
        ] {
            let csr_path = PreparedSystem::new(a.clone(), pc).unwrap();
            let stencil_path =
                PreparedSystem::with_geometry(a.clone(), pc, CgSolver::new(), &grids).unwrap();
            assert!(stencil_path.stencil().is_some(), "{pc:?}");
            let want = csr_path.solve(&b, None).unwrap();
            let got = stencil_path.solve(&b, None).unwrap();
            assert_eq!(want.x, got.x, "{pc:?}");
            assert_eq!(want.iterations, got.iterations, "{pc:?}");
        }
    }

    #[test]
    fn multigrid_through_with_geometry_converges_and_matches_jacobi() {
        let a = grid_2d(24, 24, 0.01);
        let grids = [StencilGrid {
            base: 0,
            nx: 24,
            ny: 24,
        }];
        let b = loads(576, 3);
        let jacobi = PreparedSystem::new(a.clone(), Preconditioner::Jacobi)
            .unwrap()
            .solve(&b, None)
            .unwrap();
        let mg_sys =
            PreparedSystem::with_geometry(a, Preconditioner::Multigrid, CgSolver::new(), &grids)
                .unwrap();
        let mg = mg_sys.solve(&b, None).unwrap();
        assert!(
            mg.iterations < jacobi.iterations,
            "mg {} vs jacobi {}",
            mg.iterations,
            jacobi.iterations
        );
        for (x, y) in mg.x.iter().zip(&jacobi.x) {
            assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
    }

    #[test]
    fn multigrid_without_grids_is_a_typed_error() {
        let a = grid_2d(8, 8, 0.1);
        let err = PreparedSystem::new(a, Preconditioner::Multigrid).unwrap_err();
        assert!(matches!(err, SolverError::MissingGridGeometry));
    }

    #[test]
    fn spmv_cutover_override_keeps_solutions_bitwise_identical() {
        let a = grid_2d(14, 14, 0.05);
        let b = loads(196, 19);
        let baseline = PreparedSystem::new(a.clone(), Preconditioner::Jacobi)
            .unwrap()
            .solve(&b, None)
            .unwrap();
        // Force the parallel SpMV path on a tiny system: slower, but the
        // chunked apply must still produce the exact same bits.
        let forced = PreparedSystem::new(a, Preconditioner::Jacobi)
            .unwrap()
            .with_threads(4)
            .with_spmv_min_dim(1);
        assert_eq!(forced.spmv_min_dim(), 1);
        let got = forced.solve(&b, None).unwrap();
        assert_eq!(baseline.x, got.x);
        assert_eq!(baseline.iterations, got.iterations);
    }

    #[test]
    fn calibrated_cutover_is_cached_and_clamped() {
        let first = calibrated_spmv_min_dim();
        assert!((2_048..=1 << 20).contains(&first));
        assert_eq!(calibrated_spmv_min_dim(), first);
    }

    #[test]
    fn primed_cutover_is_clamped_and_agrees_with_calibrated() {
        // First writer wins process-wide, and tests share a process, so
        // assert the invariants that hold regardless of ordering: the
        // effective value is in range and every reader sees the same one.
        let effective = prime_spmv_calibration(1);
        assert!((2_048..=1 << 20).contains(&effective));
        assert_eq!(calibrated_spmv_min_dim(), effective);
        assert_eq!(prime_spmv_calibration(usize::MAX), effective);
    }

    #[test]
    fn spmv_calibration_file_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("pi3d-calibration-test-{}", std::process::id()));
        let path = dir.join("nested").join("spmv_calibration.json");
        store_spmv_calibration(&path, 40_000).unwrap();
        assert_eq!(load_spmv_calibration(&path), Some(40_000));

        // Corrupt, wrong-schema, and out-of-range files are all "no
        // calibration" — the caller re-probes instead of erroring.
        std::fs::write(&path, b"not json").unwrap();
        assert_eq!(load_spmv_calibration(&path), None);
        std::fs::write(&path, br#"{"schema":"other.v1","spmv_min_dim":4096}"#).unwrap();
        assert_eq!(load_spmv_calibration(&path), None);
        std::fs::write(
            &path,
            format!(r#"{{"schema":"{SPMV_CALIBRATION_SCHEMA}","spmv_min_dim":17}}"#),
        )
        .unwrap();
        assert_eq!(load_spmv_calibration(&path), None);
        assert_eq!(load_spmv_calibration(&dir.join("missing.json")), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
