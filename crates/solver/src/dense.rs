use crate::{CsrMatrix, SolverError};

/// A dense, row-major square matrix used for golden-reference solves.
///
/// The dense path plays the role of the commercial sign-off tool (Cadence
/// EPS) in the paper's Figure 4 validation: slow, exact, and used only to
/// cross-check the sparse R-Mesh results on small designs.
///
/// # Examples
///
/// ```
/// use pi3d_solver::DenseMatrix;
///
/// # fn main() -> Result<(), pi3d_solver::SolverError> {
/// let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    dim: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        DenseMatrix {
            dim,
            data: vec![0.0; dim * dim],
        }
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if any row's length differs
    /// from the number of rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, SolverError> {
        let dim = rows.len();
        let mut m = DenseMatrix::zeros(dim);
        for (r, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(SolverError::DimensionMismatch {
                    expected: dim,
                    found: row.len(),
                });
            }
            m.data[r * dim..(r + 1) * dim].copy_from_slice(row);
        }
        Ok(m)
    }

    /// Expands a sparse matrix to dense storage.
    pub fn from_csr(sparse: &CsrMatrix) -> Self {
        let dim = sparse.dim();
        let mut m = DenseMatrix::zeros(dim);
        for r in 0..dim {
            for (c, v) in sparse.row(r) {
                m.data[r * dim + c] = v;
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.dim && col < self.dim);
        self.data[row * self.dim + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.dim && col < self.dim);
        self.data[row * self.dim + col] = value;
    }

    /// Computes `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, SolverError> {
        if x.len() != self.dim {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.dim];
        for r in 0..self.dim {
            let row = &self.data[r * self.dim..(r + 1) * self.dim];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Computes the Cholesky factorization `A = L·Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotPositiveDefinite`] if a non-positive pivot
    /// is encountered, which for a power grid means a floating subcircuit or
    /// a sign error in stamping.
    pub fn cholesky(&self) -> Result<CholeskyFactor, SolverError> {
        let n = self.dim;
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            let mut diag = self.data[j * n + j];
            for k in 0..j {
                diag -= l[j * n + k] * l[j * n + k];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(SolverError::NotPositiveDefinite {
                    index: j,
                    value: diag,
                });
            }
            let dsqrt = diag.sqrt();
            l[j * n + j] = dsqrt;
            for i in (j + 1)..n {
                let mut v = self.data[i * n + j];
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = v / dsqrt;
            }
        }
        Ok(CholeskyFactor { dim: n, l })
    }
}

/// The lower-triangular Cholesky factor `L` of an SPD matrix.
///
/// Obtained from [`DenseMatrix::cholesky`]; solves `A·x = b` by forward and
/// backward substitution.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    dim: usize,
    l: Vec<f64>,
}

impl CholeskyFactor {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        if b.len() != self.dim {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim,
                found: b.len(),
            });
        }
        let n = self.dim;
        // Forward substitution: L·y = b
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[i * n + k] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        // Backward substitution: Lᵀ·x = y
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[k * n + i] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        Ok(y)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    #[test]
    fn from_rows_validates_shape() {
        assert!(DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
        let a = DenseMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let x = a.cholesky().unwrap().solve(&[2.0, 1.0]).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(SolverError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_zero_matrix() {
        let a = DenseMatrix::zeros(2);
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn from_csr_roundtrip() {
        let mut b = CooBuilder::new(3);
        b.stamp_to_ground(0, 1.0);
        b.stamp_to_ground(1, 1.0);
        b.stamp_to_ground(2, 1.0);
        b.stamp_conductance(0, 1, 2.0);
        b.stamp_conductance(1, 2, 3.0);
        let sparse = b.into_csr().unwrap();
        let dense = DenseMatrix::from_csr(&sparse);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(dense.get(r, c), sparse.get(r, c));
            }
        }
    }

    #[test]
    fn solve_residual_is_tiny_on_grid_matrix() {
        // 1D resistor chain grounded at both ends, uniform injection.
        let n = 20;
        let mut b = CooBuilder::new(n);
        b.stamp_to_ground(0, 10.0);
        b.stamp_to_ground(n - 1, 10.0);
        for i in 0..n - 1 {
            b.stamp_conductance(i, i + 1, 1.0);
        }
        let a = DenseMatrix::from_csr(&b.into_csr().unwrap());
        let rhs = vec![1e-3; n];
        let x = a.cholesky().unwrap().solve(&rhs).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for i in 0..n {
            assert!((ax[i] - rhs[i]).abs() < 1e-12);
        }
        // Symmetry of the chain: solution symmetric about the midpoint.
        for i in 0..n / 2 {
            assert!((x[i] - x[n - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = DenseMatrix::from_rows(&[&[2.0]]).unwrap();
        let chol = a.cholesky().unwrap();
        assert!(chol.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn mul_vec_identity() {
        let mut a = DenseMatrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        assert_eq!(a.mul_vec(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }
}
