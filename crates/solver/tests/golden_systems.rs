//! Golden tests against closed-form solutions of structured resistive
//! networks — the strongest possible check on the whole stamping + solve
//! path, since the expected voltages come from pencil-and-paper analysis
//! rather than another numerical routine.

use pi3d_solver::{CgSolver, CooBuilder, DenseMatrix, Preconditioner};

/// A chain of `n` unit resistors between two grounded ends, with current
/// `i` injected at node `k`, has the closed form of two resistors in
/// parallel: `R_eq = (k+1)(n−k)/(n+1)` (node indices 0-based, ends tied to
/// ground through the chain's terminal resistors).
#[test]
fn resistor_chain_matches_the_closed_form() {
    // Nodes 0..n-1; node i connects to i+1 with 1 Ω; node 0 and n-1 each
    // connect to ground with 1 Ω. Inject 1 A at node k.
    let n = 11;
    for k in [0usize, 3, 5, 10] {
        let mut b = CooBuilder::new(n);
        b.stamp_to_ground(0, 1.0);
        b.stamp_to_ground(n - 1, 1.0);
        for i in 0..n - 1 {
            b.stamp_conductance(i, i + 1, 1.0);
        }
        let a = b.into_csr().unwrap();
        let mut rhs = vec![0.0; n];
        rhs[k] = 1.0;
        let sol = CgSolver::new()
            .with_tolerance(1e-13)
            .solve(&a, &rhs, Preconditioner::IncompleteCholesky)
            .unwrap();

        // Left path: k+1 resistors to ground; right path: n-k resistors.
        let r_left = (k + 1) as f64;
        let r_right = (n - k) as f64;
        let r_eq = r_left * r_right / (r_left + r_right);
        assert!(
            (sol.x[k] - r_eq).abs() < 1e-9,
            "inject at {k}: v = {} but R_eq = {r_eq}",
            sol.x[k]
        );

        // The voltage profile is linear on each side of the injection:
        // node j sits j+1 resistors from its ground on the left side
        // (n-j resistors on the right), all carrying that side's share.
        for j in 0..n {
            let expect = if j <= k {
                sol.x[k] * (j + 1) as f64 / r_left
            } else {
                sol.x[k] * (n - j) as f64 / r_right
            };
            assert!(
                (sol.x[j] - expect).abs() < 1e-9,
                "inject at {k}, node {j}: {} vs linear {expect}",
                sol.x[j]
            );
        }
    }
}

/// Two nodes joined by `g12`, each grounded through `g1`/`g2`: solve the
/// 2×2 system by hand and compare.
#[test]
fn two_node_network_matches_hand_solution() {
    let (g1, g2, g12) = (0.5, 0.25, 2.0);
    let (i1, i2) = (1e-3, 3e-3);
    let mut b = CooBuilder::new(2);
    b.stamp_to_ground(0, g1);
    b.stamp_to_ground(1, g2);
    b.stamp_conductance(0, 1, g12);
    let a = b.into_csr().unwrap();
    let sol = CgSolver::new()
        .with_tolerance(1e-14)
        .solve(&a, &[i1, i2], Preconditioner::Jacobi)
        .unwrap();

    // [g1+g12, -g12; -g12, g2+g12] v = i, Cramer's rule:
    let det = (g1 + g12) * (g2 + g12) - g12 * g12;
    let v1 = (i1 * (g2 + g12) + i2 * g12) / det;
    let v2 = ((g1 + g12) * i2 + g12 * i1) / det;
    assert!((sol.x[0] - v1).abs() < 1e-12);
    assert!((sol.x[1] - v2).abs() < 1e-12);
}

/// Reciprocity: for a symmetric conductance matrix, the voltage at node B
/// from a unit injection at node A equals the voltage at A from a unit
/// injection at B.
#[test]
fn reciprocity_holds_on_a_grid() {
    let (nx, ny) = (7, 5);
    let idx = |x: usize, y: usize| y * nx + x;
    let mut b = CooBuilder::new(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            b.stamp_to_ground(idx(x, y), 0.05);
            if x + 1 < nx {
                b.stamp_conductance(idx(x, y), idx(x + 1, y), 1.3);
            }
            if y + 1 < ny {
                b.stamp_conductance(idx(x, y), idx(x, y + 1), 0.7);
            }
        }
    }
    let a = b.into_csr().unwrap();
    let chol = DenseMatrix::from_csr(&a).cholesky().unwrap();

    for (na, nb) in [(0, nx * ny - 1), (idx(3, 2), idx(6, 0)), (1, idx(2, 4))] {
        let mut ia = vec![0.0; nx * ny];
        ia[na] = 1.0;
        let va = chol.solve(&ia).unwrap();
        let mut ib = vec![0.0; nx * ny];
        ib[nb] = 1.0;
        let vb = chol.solve(&ib).unwrap();
        assert!(
            (va[nb] - vb[na]).abs() < 1e-12,
            "reciprocity violated between {na} and {nb}: {} vs {}",
            va[nb],
            vb[na]
        );
    }
}

/// A uniformly loaded symmetric grid must produce a symmetric solution.
#[test]
fn symmetric_problem_gives_symmetric_solution() {
    let n = 9; // odd: a well-defined centre
    let idx = |x: usize, y: usize| y * n + x;
    let mut b = CooBuilder::new(n * n);
    for y in 0..n {
        for x in 0..n {
            b.stamp_to_ground(idx(x, y), 0.01);
            if x + 1 < n {
                b.stamp_conductance(idx(x, y), idx(x + 1, y), 1.0);
            }
            if y + 1 < n {
                b.stamp_conductance(idx(x, y), idx(x, y + 1), 1.0);
            }
        }
    }
    let a = b.into_csr().unwrap();
    let mut rhs = vec![0.0; n * n];
    rhs[idx(n / 2, n / 2)] = 1e-2; // centre injection
    let sol = CgSolver::new()
        .with_tolerance(1e-13)
        .solve(&a, &rhs, Preconditioner::IncompleteCholesky)
        .unwrap();
    for y in 0..n {
        for x in 0..n {
            let mirror_x = sol.x[idx(n - 1 - x, y)];
            let mirror_y = sol.x[idx(x, n - 1 - y)];
            let transpose = sol.x[idx(y, x)];
            let v = sol.x[idx(x, y)];
            assert!((v - mirror_x).abs() < 1e-10, "x-mirror at ({x},{y})");
            assert!((v - mirror_y).abs() < 1e-10, "y-mirror at ({x},{y})");
            assert!((v - transpose).abs() < 1e-10, "transpose at ({x},{y})");
        }
    }
}
