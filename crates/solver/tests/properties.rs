//! Property-based tests for the solver crate: CG must agree with the dense
//! Cholesky golden path on arbitrary well-posed resistive networks.
//!
//! Randomized inputs come from the seeded [`SplitMix64`] generator (the
//! proptest crate is unavailable offline); every case is reproducible
//! from the loop index printed in the assertion message.

#![allow(clippy::needless_range_loop)]

use pi3d_solver::{CgSolver, CooBuilder, CsrMatrix, DenseMatrix, Preconditioner};
use pi3d_telemetry::rng::SplitMix64;

const CASES: u64 = 64;

/// Builds a random connected resistive network over `n` nodes:
/// a spanning chain plus `extra` random chords, with every node having a
/// small ground tie so the system is SPD.
fn random_network(n: usize, chords: &[(usize, usize)], gs: &[f64]) -> CsrMatrix {
    let mut b = CooBuilder::new(n);
    for i in 0..n {
        b.stamp_to_ground(i, 0.01 + gs[i % gs.len()].abs());
    }
    for i in 0..n - 1 {
        b.stamp_conductance(i, i + 1, 0.5 + gs[(i + 1) % gs.len()].abs());
    }
    for &(a, c) in chords {
        let (a, c) = (a % n, c % n);
        if a != c {
            b.stamp_conductance(a, c, 0.25 + gs[(a + c) % gs.len()].abs());
        }
    }
    b.into_csr().expect("network must be well-posed")
}

fn draw_vec(rng: &mut SplitMix64, len_lo: usize, len_hi: usize, lo: f64, hi: f64) -> Vec<f64> {
    let len = rng.range(len_lo as u64, len_hi as u64) as usize;
    (0..len).map(|_| rng.range_f64(lo, hi)).collect()
}

fn draw_chords(rng: &mut SplitMix64, max: usize) -> Vec<(usize, usize)> {
    let len = rng.next_below(max as u64 + 1) as usize;
    (0..len)
        .map(|_| (rng.next_below(64) as usize, rng.next_below(64) as usize))
        .collect()
}

fn spread_loads(loads: &[f64], n: usize) -> Vec<f64> {
    let mut b = vec![0.0; n];
    for (i, v) in loads.iter().enumerate() {
        b[i % n] += v;
    }
    b
}

#[test]
fn cg_agrees_with_cholesky() {
    let mut rng = SplitMix64::new(0x5013_e401);
    for case in 0..CASES {
        let n = rng.range(2, 40) as usize;
        let chords = draw_chords(&mut rng, 11);
        let gs = draw_vec(&mut rng, 1, 8, 0.0, 4.0);
        let loads = draw_vec(&mut rng, 2, 40, 0.0, 1e-2);
        let a = random_network(n, &chords, &gs);
        let b = spread_loads(&loads, n);
        let exact = DenseMatrix::from_csr(&a)
            .cholesky()
            .unwrap()
            .solve(&b)
            .unwrap();
        let sol = CgSolver::new()
            .with_tolerance(1e-12)
            .solve(&a, &b, Preconditioner::Jacobi)
            .unwrap();
        for i in 0..n {
            assert!(
                (sol.x[i] - exact[i]).abs() < 1e-7,
                "case {case} node {i}: cg {} vs exact {}",
                sol.x[i],
                exact[i]
            );
        }
    }
}

#[test]
fn solution_is_nonnegative_for_nonnegative_injection() {
    // A conductance matrix is an M-matrix: nonnegative injections give
    // nonnegative voltages (voltage drops in our reduced formulation).
    let mut rng = SplitMix64::new(0x5013_e402);
    for case in 0..CASES {
        let n = rng.range(2, 30) as usize;
        let gs = draw_vec(&mut rng, 1, 6, 0.0, 2.0);
        let loads = draw_vec(&mut rng, 1, 30, 0.0, 1e-2);
        let a = random_network(n, &[], &gs);
        let b = spread_loads(&loads, n);
        let sol = CgSolver::new()
            .solve(&a, &b, Preconditioner::IncompleteCholesky)
            .unwrap();
        for (i, &v) in sol.x.iter().enumerate() {
            assert!(v >= -1e-9, "case {case} node {i} went negative: {v}");
        }
    }
}

#[test]
fn stamped_matrices_are_symmetric_diagonally_dominant() {
    let mut rng = SplitMix64::new(0x5013_e403);
    for case in 0..CASES {
        let n = rng.range(2, 50) as usize;
        let chords = draw_chords(&mut rng, 19);
        let gs = draw_vec(&mut rng, 1, 8, 0.0, 4.0);
        let a = random_network(n, &chords, &gs);
        assert!(a.is_symmetric(1e-12), "case {case}");
        assert!(a.is_diagonally_dominant(1e-9), "case {case}");
    }
}

#[test]
fn superposition_holds() {
    // Linear system: solve(b1) + solve(b2) == solve(b1 + b2).
    let mut rng = SplitMix64::new(0x5013_e404);
    for case in 0..CASES {
        let n = rng.range(2, 25) as usize;
        let gs = draw_vec(&mut rng, 1, 6, 0.0, 2.0);
        let l1 = draw_vec(&mut rng, 1, 25, 0.0, 1e-2);
        let l2 = draw_vec(&mut rng, 1, 25, 0.0, 1e-2);
        let a = random_network(n, &[], &gs);
        let b1 = spread_loads(&l1, n);
        let b2 = spread_loads(&l2, n);
        let solver = CgSolver::new().with_tolerance(1e-13);
        let s1 = solver.solve(&a, &b1, Preconditioner::Jacobi).unwrap();
        let s2 = solver.solve(&a, &b2, Preconditioner::Jacobi).unwrap();
        let sum_b: Vec<f64> = b1.iter().zip(&b2).map(|(x, y)| x + y).collect();
        let s12 = solver.solve(&a, &sum_b, Preconditioner::Jacobi).unwrap();
        for i in 0..n {
            assert!(
                (s1.x[i] + s2.x[i] - s12.x[i]).abs() < 1e-7,
                "case {case} node {i}"
            );
        }
    }
}
