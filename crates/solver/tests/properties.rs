//! Property-based tests for the solver crate: CG must agree with the dense
//! Cholesky golden path on arbitrary well-posed resistive networks.

#![allow(clippy::needless_range_loop)]

use pi3d_solver::{CgSolver, CooBuilder, CsrMatrix, DenseMatrix, Preconditioner};
use proptest::prelude::*;

/// Builds a random connected resistive network over `n` nodes:
/// a spanning chain plus `extra` random chords, with every node having a
/// small ground tie so the system is SPD.
fn random_network(n: usize, chords: &[(usize, usize)], gs: &[f64]) -> CsrMatrix {
    let mut b = CooBuilder::new(n);
    for i in 0..n {
        b.stamp_to_ground(i, 0.01 + gs[i % gs.len()].abs());
    }
    for i in 0..n - 1 {
        b.stamp_conductance(i, i + 1, 0.5 + gs[(i + 1) % gs.len()].abs());
    }
    for &(a, c) in chords {
        let (a, c) = (a % n, c % n);
        if a != c {
            b.stamp_conductance(a, c, 0.25 + gs[(a + c) % gs.len()].abs());
        }
    }
    b.into_csr().expect("network must be well-posed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cg_agrees_with_cholesky(
        n in 2usize..40,
        chords in proptest::collection::vec((0usize..64, 0usize..64), 0..12),
        gs in proptest::collection::vec(0.0f64..4.0, 1..8),
        loads in proptest::collection::vec(0.0f64..1e-2, 2..40),
    ) {
        let a = random_network(n, &chords, &gs);
        let mut b = vec![0.0; n];
        for (i, v) in loads.iter().enumerate() {
            b[i % n] += v;
        }
        let exact = DenseMatrix::from_csr(&a).cholesky().unwrap().solve(&b).unwrap();
        let sol = CgSolver::new().with_tolerance(1e-12).solve(&a, &b, Preconditioner::Jacobi).unwrap();
        for i in 0..n {
            prop_assert!((sol.x[i] - exact[i]).abs() < 1e-7,
                "node {}: cg {} vs exact {}", i, sol.x[i], exact[i]);
        }
    }

    #[test]
    fn solution_is_nonnegative_for_nonnegative_injection(
        n in 2usize..30,
        gs in proptest::collection::vec(0.0f64..2.0, 1..6),
        loads in proptest::collection::vec(0.0f64..1e-2, 1..30),
    ) {
        // A conductance matrix is an M-matrix: nonnegative injections give
        // nonnegative voltages (voltage drops in our reduced formulation).
        let a = random_network(n, &[], &gs);
        let mut b = vec![0.0; n];
        for (i, v) in loads.iter().enumerate() {
            b[i % n] += v;
        }
        let sol = CgSolver::new().solve(&a, &b, Preconditioner::IncompleteCholesky).unwrap();
        for (i, &v) in sol.x.iter().enumerate() {
            prop_assert!(v >= -1e-9, "node {} went negative: {}", i, v);
        }
    }

    #[test]
    fn stamped_matrices_are_symmetric_diagonally_dominant(
        n in 2usize..50,
        chords in proptest::collection::vec((0usize..64, 0usize..64), 0..20),
        gs in proptest::collection::vec(0.0f64..4.0, 1..8),
    ) {
        let a = random_network(n, &chords, &gs);
        prop_assert!(a.is_symmetric(1e-12));
        prop_assert!(a.is_diagonally_dominant(1e-9));
    }

    #[test]
    fn superposition_holds(
        n in 2usize..25,
        gs in proptest::collection::vec(0.0f64..2.0, 1..6),
        l1 in proptest::collection::vec(0.0f64..1e-2, 1..25),
        l2 in proptest::collection::vec(0.0f64..1e-2, 1..25),
    ) {
        // Linear system: solve(b1) + solve(b2) == solve(b1 + b2).
        let a = random_network(n, &[], &gs);
        let mut b1 = vec![0.0; n];
        let mut b2 = vec![0.0; n];
        for (i, v) in l1.iter().enumerate() { b1[i % n] += v; }
        for (i, v) in l2.iter().enumerate() { b2[i % n] += v; }
        let solver = CgSolver::new().with_tolerance(1e-13);
        let s1 = solver.solve(&a, &b1, Preconditioner::Jacobi).unwrap();
        let s2 = solver.solve(&a, &b2, Preconditioner::Jacobi).unwrap();
        let sum_b: Vec<f64> = b1.iter().zip(&b2).map(|(x, y)| x + y).collect();
        let s12 = solver.solve(&a, &sum_b, Preconditioner::Jacobi).unwrap();
        for i in 0..n {
            prop_assert!((s1.x[i] + s2.x[i] - s12.x[i]).abs() < 1e-7);
        }
    }
}
