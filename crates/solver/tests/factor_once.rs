//! Asserts the factor-once guarantee of `PreparedSystem` through the
//! telemetry counters: one preconditioner build per handle, no matter how
//! many solves run through it.
//!
//! This file deliberately holds a single test so the global telemetry
//! registry sees no concurrent writers from sibling tests in this binary.

#![cfg(feature = "telemetry")]

use pi3d_solver::{CooBuilder, Preconditioner, PreparedSystem};
use pi3d_telemetry::metrics;

#[test]
fn preconditioner_is_built_exactly_once_across_n_solves() {
    let n = 24;
    let mut b = CooBuilder::new(n * n);
    let idx = |x: usize, y: usize| y * n + x;
    for y in 0..n {
        for x in 0..n {
            b.stamp_to_ground(idx(x, y), 0.05);
            if x + 1 < n {
                b.stamp_conductance(idx(x, y), idx(x + 1, y), 1.0);
            }
            if y + 1 < n {
                b.stamp_conductance(idx(x, y), idx(x, y + 1), 1.0);
            }
        }
    }
    let a = b.into_csr().unwrap();

    let builds = metrics::counter("solver.precond.builds");
    let prepared_solves = metrics::counter("solver.prepared.solves");
    let avoided = metrics::counter("solver.prepared.factorizations_avoided");

    let builds_before = builds.get();
    let system = PreparedSystem::new(a, Preconditioner::IncompleteCholesky)
        .unwrap()
        .with_threads(4);
    assert_eq!(
        builds.get() - builds_before,
        1,
        "construction performs the single factorization"
    );

    let solves_before = prepared_solves.get();
    let avoided_before = avoided.get();
    let total_solves = 10u64;
    for i in 0..4u64 {
        let rhs: Vec<f64> = (0..n * n)
            .map(|j| 1e-3 * ((i + j as u64) % 7) as f64)
            .collect();
        system.solve(&rhs, None).unwrap();
    }
    let batch: Vec<Vec<f64>> = (0..6u64)
        .map(|i| {
            (0..n * n)
                .map(|j| 1e-3 * ((i + j as u64) % 5) as f64)
                .collect()
        })
        .collect();
    system.solve_batch(&batch).unwrap();

    assert_eq!(
        builds.get() - builds_before,
        1,
        "no further factorization across {total_solves} solves"
    );
    assert_eq!(prepared_solves.get() - solves_before, total_solves);
    assert_eq!(
        avoided.get() - avoided_before,
        total_solves - 1,
        "every solve but the first avoids a factorization"
    );
    assert_eq!(system.solve_count(), total_solves);
}
