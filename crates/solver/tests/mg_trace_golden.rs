//! Golden-shape test for multigrid trace coverage: a traced MG-CG solve
//! must emit `mg:level{k}:smooth/restrict/prolong` spans whose counts
//! follow the V-cycle structure, and the `solver.mg.cycles` counter must
//! track the number of cycles applied.
//!
//! This file deliberately holds a single test: the tracer and metrics
//! registry are process-global, and integration-test files each get
//! their own process, so nothing else races the recorder here.

#![cfg(feature = "telemetry")]

use pi3d_solver::{CgSolver, CooBuilder, Preconditioner, PreparedSystem, StencilGrid};
use pi3d_telemetry::{metrics, trace, Json};

/// Poisson-like sheet with ground ties on one edge — big enough
/// (64×64 = 4096 nodes) that the hierarchy has two smoothing levels
/// above the dense coarse solve.
fn sheet(n: usize) -> (pi3d_solver::CsrMatrix, Vec<StencilGrid>) {
    let mut coo = CooBuilder::new(n * n);
    for iy in 0..n {
        for ix in 0..n {
            let node = iy * n + ix;
            if ix + 1 < n {
                coo.stamp_conductance(node, node + 1, 1.0);
            }
            if iy + 1 < n {
                coo.stamp_conductance(node, node + n, 1.0);
            }
            if ix == 0 {
                coo.stamp_to_ground(node, 1.0);
            }
        }
    }
    let a = coo.into_csr().expect("grid assembles");
    (
        a,
        vec![StencilGrid {
            base: 0,
            nx: n,
            ny: n,
        }],
    )
}

#[test]
fn mg_solve_emits_level_spans_and_cycle_counter() {
    trace::reset();
    trace::set_capacity(trace::DEFAULT_CAPACITY);
    trace::set_enabled(true);

    let (a, grids) = sheet(64);
    let dim = a.dim();
    let cycles_metric = metrics::counter("solver.mg.cycles");
    let cycles_before = cycles_metric.get();
    let system = PreparedSystem::with_geometry(
        a,
        Preconditioner::Multigrid,
        CgSolver::new().with_tolerance(1e-10),
        &grids,
    )
    .expect("hierarchy builds");
    let mut rhs = vec![0.0; dim];
    rhs[dim / 2] = 1.0;
    let solution = system.solve(&rhs, None).expect("solves");
    assert!(solution.iterations >= 2, "want a real CG run");

    trace::set_enabled(false);
    let doc = trace::drain().to_chrome_json();
    trace::reset();
    let parsed = Json::parse(&doc.to_pretty_string()).expect("trace is valid JSON");
    let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };

    // The registry counter advanced by exactly the cycle count, and the
    // trace carries matching counter samples ending at that total.
    let cycles = cycles_metric.get() - cycles_before;
    assert!(cycles >= solution.iterations as u64, "one cycle per apply");
    let samples: Vec<f64> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("C")
                && e.get("name").and_then(Json::as_str) == Some("mg.cycles")
        })
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_num)
                .expect("counter value")
        })
        .collect();
    assert_eq!(samples.len() as u64, cycles, "one sample per cycle");
    assert_eq!(*samples.last().expect("non-empty"), cycles as f64);

    // Span census per level: each V-cycle does two smooth spans (pre +
    // post), one restrict, and one prolong on every smoothing level.
    let span_count = |name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("name").and_then(Json::as_str) == Some(name)
            })
            .count() as u64
    };
    // 64×64 → 32×32 → dense: two smoothing levels above the coarse solve.
    for level in 0..2 {
        let smooth = span_count(&format!("mg:level{level}:smooth"));
        let restrict = span_count(&format!("mg:level{level}:restrict"));
        let prolong = span_count(&format!("mg:level{level}:prolong"));
        assert_eq!(smooth, 2 * cycles, "level {level} smooth spans");
        assert_eq!(restrict, cycles, "level {level} restrict spans");
        assert_eq!(prolong, cycles, "level {level} prolong spans");
    }
    assert_eq!(
        span_count("mg:level2:smooth"),
        0,
        "level 2 is the dense coarse solve, not a smoothing level"
    );
}
